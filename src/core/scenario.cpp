#include "core/scenario.hpp"

#include <bit>

namespace tacc {

namespace {

/// Order-sensitive 64-bit mix over the values fed in; splitmix64-based so it
/// replays identically on every platform.
class FingerprintMixer {
 public:
  void mix(std::uint64_t value) noexcept {
    state_ ^= value;
    digest_ = util::splitmix64(state_);
  }
  void mix(double value) noexcept { mix(std::bit_cast<std::uint64_t>(value)); }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  std::uint64_t state_ = 0x7ACC5EEDULL;  // arbitrary nonzero start
  std::uint64_t digest_ = 0;
};

[[nodiscard]] std::uint64_t compute_fingerprint(const ScenarioParams& params,
                                                const gap::Instance& inst) {
  FingerprintMixer mixer;
  mixer.mix(params.seed);
  mixer.mix(static_cast<std::uint64_t>(params.family));
  mixer.mix(static_cast<std::uint64_t>(params.topology.node_count));
  mixer.mix(params.topology.area_km);
  mixer.mix(static_cast<std::uint64_t>(params.workload.iot_count));
  mixer.mix(static_cast<std::uint64_t>(params.workload.edge_count));
  mixer.mix(params.workload.load_factor);
  const std::size_t n = inst.device_count();
  const std::size_t m = inst.server_count();
  mixer.mix(static_cast<std::uint64_t>(n));
  mixer.mix(static_cast<std::uint64_t>(m));
  mixer.mix(inst.total_capacity());
  // A strided sample of the delay matrix ties the digest to the realized
  // topology, not just the knobs that produced it.
  const std::size_t stride = std::max<std::size_t>(1, (n * m) / 64);
  for (std::size_t flat = 0; flat < n * m; flat += stride) {
    mixer.mix(inst.delay_ms(flat / m, flat % m));
  }
  return mixer.digest();
}

}  // namespace

Scenario Scenario::generate(const ScenarioParams& params) {
  Scenario scenario;
  scenario.params_ = params;

  util::Rng rng(params.seed);
  util::Rng topo_rng = rng.fork(1);
  util::Rng workload_rng = rng.fork(2);

  const topo::GeoGraph infra = topo::generate(
      params.family, params.topology, params.delay_model, topo_rng);
  scenario.workload_ =
      workload::generate_workload(params.workload, workload_rng);
  scenario.network_ = topo::build_network(
      infra, scenario.workload_.iot_positions(),
      scenario.workload_.edge_positions(), params.delay_model, params.attach);
  gap::BuilderOptions builder;
  builder.threads = params.build_threads;
  scenario.instance_ = std::make_shared<const gap::Instance>(
      gap::build_instance(scenario.network_, scenario.workload_, builder));
  gap::BuilderOptions oblivious = builder;
  oblivious.topology_oblivious_costs = true;
  scenario.oblivious_instance_ = std::make_shared<const gap::Instance>(
      gap::build_instance(scenario.network_, scenario.workload_, oblivious));
  scenario.fingerprint_ =
      compute_fingerprint(params, *scenario.instance_);
  return scenario;
}

Scenario Scenario::smart_city(std::size_t iot_count, std::size_t edge_count,
                              std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kWaxman;
  params.topology.node_count = std::max<std::size_t>(30, edge_count * 2);
  params.topology.area_km = 12.0;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kClustered;
  params.workload.hotspot_count = 6;
  params.workload.load_factor = 0.7;
  return generate(params);
}

Scenario Scenario::factory(std::size_t iot_count, std::size_t edge_count,
                           std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kRandomGeometric;
  params.topology.node_count = std::max<std::size_t>(25, edge_count * 2);
  params.topology.area_km = 1.0;           // one plant
  params.topology.geometric_radius_km = 0.3;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kUniform;
  params.workload.deadline_min_ms = 5.0;   // stringent real-time deadlines
  params.workload.deadline_max_ms = 15.0;
  params.workload.load_factor = 0.85;      // tight capacity
  params.workload.rate_mean_hz = 20.0;
  return generate(params);
}

Scenario Scenario::campus(std::size_t iot_count, std::size_t edge_count,
                          std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kHierarchical;
  params.topology.node_count = std::max<std::size_t>(40, edge_count * 3);
  params.topology.area_km = 4.0;
  params.topology.hierarchical_branching = 3;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kClustered;
  params.workload.hotspot_count = 8;
  params.workload.load_factor = 0.6;
  return generate(params);
}

}  // namespace tacc
