#include "core/scenario.hpp"

namespace tacc {

Scenario Scenario::generate(const ScenarioParams& params) {
  Scenario scenario;
  scenario.params_ = params;

  util::Rng rng(params.seed);
  util::Rng topo_rng = rng.fork(1);
  util::Rng workload_rng = rng.fork(2);

  const topo::GeoGraph infra = topo::generate(
      params.family, params.topology, params.delay_model, topo_rng);
  scenario.workload_ =
      workload::generate_workload(params.workload, workload_rng);
  scenario.network_ = topo::build_network(
      infra, scenario.workload_.iot_positions(),
      scenario.workload_.edge_positions(), params.delay_model, params.attach);
  scenario.instance_ = std::make_shared<const gap::Instance>(
      gap::build_instance(scenario.network_, scenario.workload_));
  return scenario;
}

const gap::Instance& Scenario::oblivious_instance() const {
  if (!oblivious_instance_) {
    gap::BuilderOptions options;
    options.topology_oblivious_costs = true;
    oblivious_instance_ = std::make_shared<const gap::Instance>(
        gap::build_instance(network_, workload_, options));
  }
  return *oblivious_instance_;
}

Scenario Scenario::smart_city(std::size_t iot_count, std::size_t edge_count,
                              std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kWaxman;
  params.topology.node_count = std::max<std::size_t>(30, edge_count * 2);
  params.topology.area_km = 12.0;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kClustered;
  params.workload.hotspot_count = 6;
  params.workload.load_factor = 0.7;
  return generate(params);
}

Scenario Scenario::factory(std::size_t iot_count, std::size_t edge_count,
                           std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kRandomGeometric;
  params.topology.node_count = std::max<std::size_t>(25, edge_count * 2);
  params.topology.area_km = 1.0;           // one plant
  params.topology.geometric_radius_km = 0.3;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kUniform;
  params.workload.deadline_min_ms = 5.0;   // stringent real-time deadlines
  params.workload.deadline_max_ms = 15.0;
  params.workload.load_factor = 0.85;      // tight capacity
  params.workload.rate_mean_hz = 20.0;
  return generate(params);
}

Scenario Scenario::campus(std::size_t iot_count, std::size_t edge_count,
                          std::uint64_t seed) {
  ScenarioParams params;
  params.seed = seed;
  params.family = topo::TopologyFamily::kHierarchical;
  params.topology.node_count = std::max<std::size_t>(40, edge_count * 3);
  params.topology.area_km = 4.0;
  params.topology.hierarchical_branching = 3;
  params.workload.iot_count = iot_count;
  params.workload.edge_count = edge_count;
  params.workload.area_km = params.topology.area_km;
  params.workload.iot_placement = workload::PlacementPattern::kClustered;
  params.workload.hotspot_count = 8;
  params.workload.load_factor = 0.6;
  return generate(params);
}

}  // namespace tacc
