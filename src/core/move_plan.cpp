#include "core/move_plan.hpp"

#include <cmath>

namespace tacc {

double MovePlan::predicted_gain() const noexcept {
  double gain = 0.0;
  for (const PlannedMove& move : moves) gain += move.predicted_gain;
  return gain;
}

void BudgetLedger::advance(double now_s) {
  if (budget_.window_s <= 0.0) return;  // degenerate: one infinite window
  const auto window =
      static_cast<std::uint64_t>(std::floor(now_s / budget_.window_s));
  if (window != window_) {
    window_ = window;
    spent_ = 0;
    device_spend_.clear();
  }
}

std::size_t BudgetLedger::remaining() const noexcept {
  return spent_ >= budget_.max_moves_per_window
             ? 0
             : budget_.max_moves_per_window - spent_;
}

bool BudgetLedger::allows(std::size_t device) const {
  if (remaining() == 0) return false;
  const auto it = device_spend_.find(device);
  return it == device_spend_.end() ||
         it->second < budget_.max_device_moves_per_window;
}

void BudgetLedger::charge(std::size_t device) {
  ++spent_;
  ++device_spend_[device];
}

}  // namespace tacc
