// Dynamic reconfiguration: devices join and leave a running cluster.
//
// Full re-optimization on every arrival is wasteful and churns existing
// sessions; DynamicCluster instead applies an incremental policy — joiners
// get the cheapest feasible server (one Dijkstra from the new device's
// attachment point), leavers free their load — with an optional bounded
// rebalance() pass to drain the accumulated suboptimality. This implements
// the "cluster configuration" lifecycle the paper's title refers to beyond
// the one-shot assignment.
#pragma once

#include <optional>

#include "core/configurator.hpp"
#include "core/scenario.hpp"

namespace tacc {

class DynamicCluster {
 public:
  /// Starts from `scenario` configured with `initial` (default: the RL
  /// configuration the paper proposes).
  DynamicCluster(const Scenario& scenario,
                 Algorithm initial = Algorithm::kQLearning,
                 const AlgorithmOptions& options = {});

  /// Attaches a new device at its position, assigns it to the cheapest
  /// feasible server (least-utilized fallback), returns its device index.
  std::size_t join(const workload::IotDevice& device);

  /// Removes a device; its load is freed. Throws if already inactive.
  void leave(std::size_t device_index);

  // ---- Mobility -------------------------------------------------------------
  /// Radio handover: re-attaches an active device at `new_position` (fresh
  /// access link + recomputed delay row) and reassigns it to the cheapest
  /// feasible server. Returns the device's NEW index; the old one becomes
  /// inactive.
  std::size_t move(std::size_t device_index, topo::Point2D new_position);
  /// Same handover but the device stays pinned to its current server — the
  /// "no reconfiguration" baseline that lets mobility experiments measure
  /// how much a static assignment degrades as devices drift.
  std::size_t move_pinned(std::size_t device_index,
                          topo::Point2D new_position);

  /// Bounded best-improvement repair over active devices: applies up to
  /// `max_moves` feasible cost-reducing reassignments. Returns moves made.
  std::size_t rebalance(std::size_t max_moves);

  /// Restores capacity feasibility after overload (e.g. cascading failures
  /// forced the least-utilized fallback): while a healthy server is over
  /// capacity, evicts the resident whose cheapest feasible relocation costs
  /// least — accepting cost increases, unlike rebalance(). Returns moves
  /// made; stops at `max_moves` or when nothing movable remains.
  std::size_t repair(std::size_t max_moves);

  // ---- Server failures ------------------------------------------------------
  /// Takes server `j` out of service and evacuates its devices to their
  /// cheapest feasible healthy servers (least-utilized fallback). Returns
  /// the number of devices evacuated. Throws if already failed or if it is
  /// the last healthy server.
  std::size_t fail_server(std::size_t server);
  /// Returns a failed server to service (devices migrate back only via
  /// rebalance()). Throws if not failed.
  void recover_server(std::size_t server);
  [[nodiscard]] bool server_failed(std::size_t server) const {
    return failed_.at(server);
  }
  [[nodiscard]] std::size_t healthy_server_count() const noexcept;

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return capacities_.size();
  }
  [[nodiscard]] bool is_active(std::size_t device_index) const {
    return device_index < assignment_.size() &&
           assignment_[device_index] != gap::kUnassigned;
  }
  /// Server of an active device.
  [[nodiscard]] std::size_t server_of(std::size_t device_index) const;
  /// Mean shortest-path delay over active devices (ms).
  [[nodiscard]] double avg_delay_ms() const noexcept;
  [[nodiscard]] double max_utilization() const noexcept;
  [[nodiscard]] bool feasible() const noexcept;
  [[nodiscard]] const std::vector<double>& loads() const noexcept {
    return loads_;
  }

 private:
  [[nodiscard]] std::vector<double> delay_row_for_node(
      topo::NodeId device_node) const;
  /// Adds the device's node + access link + delay row; no assignment yet.
  std::size_t attach_device(const workload::IotDevice& device);
  [[nodiscard]] std::size_t cheapest_feasible_server(
      std::size_t device_index) const;

  topo::NetworkTopology net_;   // grows as devices join
  topo::LinkDelayModel delay_model_;
  std::vector<topo::NodeId> router_nodes_;
  std::vector<topo::Point2D> router_positions_;

  // Per device (index-stable; leavers keep their slot, marked kUnassigned):
  std::vector<workload::IotDevice> devices_;
  std::vector<std::vector<double>> delay_rows_;  // device → per-server ms
  gap::Assignment assignment_;

  std::vector<double> capacities_;
  std::vector<double> loads_;
  std::vector<bool> failed_;
  std::size_t active_ = 0;
};

}  // namespace tacc
