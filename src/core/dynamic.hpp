// Dynamic reconfiguration: devices join, move and leave a running cluster;
// edge servers fail and recover under it.
//
// Full re-optimization on every arrival is wasteful and churns existing
// sessions; DynamicCluster instead applies an incremental policy — joiners
// get the cheapest feasible server (one Dijkstra from the new device's
// attachment point), leavers free their load — with an optional bounded
// rebalance() pass to drain the accumulated suboptimality. This implements
// the "cluster configuration" lifecycle the paper's title refers to beyond
// the one-shot assignment.
//
// The engine is churn-hardened for long horizons:
//  - Node recycling: leave() releases the device's graph node and access
//    link back to the topology's free list, and its device slot (delay row
//    included) is reused by the next join. Memory footprint tracks *peak*
//    population, not cumulative arrivals.
//  - Stable indices: move()/move_pinned() re-attach in place, so a device
//    keeps its index across handovers (no old-index invalidation).
//  - Incremental delay rows: only the moved/joined device's row is
//    recomputed (one Dijkstra), written into recycled storage.
//  - Explicit outcomes: join/move return a JoinResult and failure
//    evacuations return an EvacuationReport instead of silently falling
//    back onto an overloaded server.
//
// Slot-reuse caveat: after leave(i), index i is inactive until a later
// join() recycles it for a *new* device; stale indices held across joins
// may therefore alias a different device (classic ABA), just like fd or
// pid reuse.
#pragma once

#include <memory>

#include "core/configurator.hpp"
#include "core/move_plan.hpp"
#include "core/scenario.hpp"
#include "topology/oracle/oracle.hpp"

namespace tacc {

/// Outcome of placing one device (join, handover, or evacuation).
struct JoinResult {
  std::size_t device_index = 0;
  std::size_t server = 0;
  /// Placed within capacity on a healthy server.
  bool feasible = false;
  /// No healthy server had room: placed on the least-utilized healthy one,
  /// overloading it. repair() can restore feasibility later.
  bool overload_fallback = false;
  /// Cost of the chosen placement under the cluster's CostModel
  /// (placement_cost(device, server)) — every placement path (join, move,
  /// move_pinned, evacuation) reports through the same scoring so callers
  /// and the re-optimizer compare like with like.
  double cost = 0.0;
};

/// Aggregate outcome of draining a failed server.
struct EvacuationReport {
  std::size_t evacuated = 0;   ///< devices relocated off the server
  std::size_t overloaded = 0;  ///< of which via the overload fallback
  [[nodiscard]] bool clean() const noexcept { return overloaded == 0; }
};

/// Outcome of one in-place backbone-link mutation.
struct LinkUpdateReport {
  std::uint64_t epoch = 0;           ///< engine epoch after the update
  std::uint64_t nodes_affected = 0;  ///< Σ per-tree affected-region sizes
  std::uint64_t nodes_saved = 0;     ///< full-recompute visits avoided
  std::size_t rows_refreshed = 0;    ///< device delay rows rewritten
  double latency_ms = 0.0;           ///< the link's (previous) latency
};

class DynamicCluster {
 public:
  /// Starts from `scenario` configured with `initial` (default: the RL
  /// configuration the paper proposes). Scores subsequent placements with
  /// the default topology-aware cost model.
  DynamicCluster(const Scenario& scenario,
                 Algorithm initial = Algorithm::kQLearning,
                 const AlgorithmOptions& options = {});
  /// Same, but the full ConfigureRequest: the initial solve honours the
  /// request verbatim and the request's CostModel becomes the cluster's
  /// live scoring function (placement_cost()) used by every greedy path
  /// and by the background re-optimizer. kEuclidean has no dynamic
  /// equivalent — the live engine always scores true shortest-path delays
  /// (the ablation only distorts the one-shot solve), so it scores as
  /// kTopologyAware here.
  DynamicCluster(const Scenario& scenario, const ConfigureRequest& request);

  // The incremental delay engine points into net_, so the cluster must stay
  // at one address. Factory-style `return DynamicCluster(...)` still works
  // via guaranteed elision; heap-allocate to store in containers.
  DynamicCluster(const DynamicCluster&) = delete;
  DynamicCluster& operator=(const DynamicCluster&) = delete;

  /// Attaches a new device at its position (recycling a departed device's
  /// slot + graph node when available) and assigns it to the cheapest
  /// feasible server. The result carries the index, the server, and whether
  /// the overload fallback fired.
  JoinResult join(const workload::IotDevice& device);

  /// Removes a device: frees its load, releases its graph node + access
  /// link, and recycles its slot and delay row for future joins. Throws if
  /// already inactive.
  void leave(std::size_t device_index);

  // ---- Mobility -------------------------------------------------------------
  /// Radio handover: re-attaches an active device at `new_position` (fresh
  /// access link + recomputed delay row, in place — the index is stable)
  /// and reassigns it to the cheapest feasible server.
  JoinResult move(std::size_t device_index, topo::Point2D new_position);
  /// Same handover but the device stays pinned to its current server — the
  /// "no reconfiguration" baseline that lets mobility experiments measure
  /// how much a static assignment degrades as devices drift. If the pinned
  /// server has failed (deferred evacuation), falls back to the cheapest
  /// feasible healthy server; the result says which server was used.
  JoinResult move_pinned(std::size_t device_index,
                         topo::Point2D new_position);

  /// Bounded best-improvement repair over active devices: applies up to
  /// `max_moves` feasible cost-reducing reassignments. Returns moves made.
  std::size_t rebalance(std::size_t max_moves);

  /// Restores capacity feasibility after overload (e.g. cascading failures
  /// forced the least-utilized fallback): while a healthy server is over
  /// capacity, evicts the resident whose cheapest feasible relocation costs
  /// least — accepting cost increases, unlike rebalance(). Returns moves
  /// made; stops at `max_moves` or when nothing movable remains.
  std::size_t repair(std::size_t max_moves);

  // ---- Budgeted move plans --------------------------------------------------
  /// Applies a batch of asynchronously proposed moves (see
  /// core/move_plan.hpp), re-validating each against live state in plan
  /// order. A move is rejected — individually, without aborting the batch —
  /// when it is stale (device gone, slot recycled to a new generation, no
  /// longer on `from`, or malformed), its target has failed, its target
  /// lacks headroom, or `ledger` (optional) has no budget left for it.
  /// Applied moves charge the ledger and bump assignment_version(). This is
  /// the ONLY mutation entry point the background re-optimizer may use
  /// (enforced by lint rule R6).
  MovePlanReport apply_move_plan(const MovePlan& plan,
                                 BudgetLedger* ledger = nullptr);

  /// Cost of placing active device `i` on server `j` under the cluster's
  /// CostModel: weight × cached shortest-path delay, inflated by the
  /// penalty factor when kDeadlinePenalized and the delay misses the
  /// device's deadline. The single scoring function shared by join/move
  /// placement, rebalance/repair and the re-optimizer.
  [[nodiscard]] double placement_cost(std::size_t device_index,
                                      std::size_t server) const;
  /// Σ placement_cost(i, server_of(i)) over active devices — the live
  /// total the re-optimizer drives down.
  [[nodiscard]] double total_cost() const;
  [[nodiscard]] CostModel cost_model() const noexcept { return cost_model_; }

  /// Reuse generation of a device slot: bumped when its occupant leaves, so
  /// plans proposed against the old occupant are detectably stale after the
  /// slot is recycled (the ABA caveat above, made checkable).
  [[nodiscard]] std::uint64_t slot_generation(std::size_t slot) const {
    return generations_.at(slot);
  }
  /// Bumps on every assignment mutation (placement, leave, rebalance,
  /// repair, applied plan moves) — lets asynchronous proposers detect that
  /// the cluster moved under them.
  [[nodiscard]] std::uint64_t assignment_version() const noexcept {
    return assignment_version_;
  }
  /// Served per-server delay row of an active device (ms), through the
  /// configured DelayOracle. Exact under the default backend; within the
  /// certified envelope for approximate ones (see topology/oracle/).
  [[nodiscard]] const std::vector<double>& delay_row(
      std::size_t device_index) const {
    return oracle_->row(device_index);
  }
  /// Engine epoch at which the device's row was last rewritten — newer
  /// epochs mark rows dirtied by link churn, which the re-optimizer scans
  /// first.
  [[nodiscard]] std::uint64_t delay_row_epoch(std::size_t device_index) const {
    return oracle_->row_epoch(device_index);
  }
  /// The live delay oracle serving this cluster's rows (backend selected by
  /// ConfigureRequest::oracle; introspection for ORACLE_STATS and benches).
  [[nodiscard]] const topo::oracle::DelayOracle& delay_oracle() const {
    return *oracle_;
  }
  [[nodiscard]] const workload::IotDevice& device(
      std::size_t device_index) const {
    return devices_.at(device_index);
  }
  [[nodiscard]] const std::vector<double>& capacities() const noexcept {
    return capacities_;
  }

  // ---- Server failures ------------------------------------------------------
  /// Takes server `j` out of service. With `evacuate` (default) its devices
  /// move immediately to their cheapest feasible healthy servers; with
  /// `evacuate == false` residents stay assigned (deferred drain — call
  /// evacuate_server() later; handovers and joins already avoid the failed
  /// server). Throws if already failed or if it is the last healthy server.
  EvacuationReport fail_server(std::size_t server, bool evacuate = true);
  /// Drains every device still assigned to failed server `j` to its
  /// cheapest feasible healthy server. Throws if `j` is not failed.
  EvacuationReport evacuate_server(std::size_t server);
  /// Returns a failed server to service (devices migrate back only via
  /// rebalance()). Throws if not failed.
  void recover_server(std::size_t server);
  [[nodiscard]] bool server_failed(std::size_t server) const {
    return failed_.at(server);
  }
  [[nodiscard]] std::size_t healthy_server_count() const noexcept;

  // ---- Backbone link churn --------------------------------------------------
  // In-place router–router link mutations. Each one repairs every server's
  // shortest-path tree incrementally (cost O(affected region), not a full
  // recompute) and rewrites only the delay rows of devices whose distances
  // actually moved. Assignments are NOT changed — call rebalance() to react.
  // Throws std::invalid_argument if an endpoint is not a router or the link
  // precondition fails (fail: link must exist; restore: must be failed).

  /// Takes the u–v backbone link out of service. Devices may become
  /// unreachable from some servers (their row entries go infinite).
  LinkUpdateReport fail_link(topo::NodeId u, topo::NodeId v);
  /// Returns a previously failed backbone link to service.
  LinkUpdateReport restore_link(topo::NodeId u, topo::NodeId v);
  /// Rewrites a live backbone link's latency (ms, must be positive);
  /// the report carries the previous latency.
  LinkUpdateReport set_link_latency(topo::NodeId u, topo::NodeId v,
                                    double latency_ms);

  /// The live topology (failed_links lists currently failed backbone links).
  [[nodiscard]] const topo::NetworkTopology& network() const noexcept {
    return net_;
  }
  /// Cumulative incremental-engine counters (epoch, link updates, affected
  /// and saved node visits).
  [[nodiscard]] const topo::incr::EngineStats& link_stats() const noexcept {
    return engine_.stats();
  }
  /// Bumps on every distance-relevant topology change.
  [[nodiscard]] std::uint64_t delay_epoch() const noexcept {
    return engine_.epoch();
  }
  [[nodiscard]] std::uint64_t delay_rows_refreshed() const noexcept {
    return oracle_->rows_refreshed();
  }
  [[nodiscard]] std::uint64_t delay_rows_saved() const noexcept {
    return oracle_->rows_saved();
  }
  /// Digest of the served delay view; distinguishes every epoch, so stale
  /// consumers detect reconfigurations they slept through even when a
  /// fail/restore pair returned the values to their start state. Matches
  /// DelayMatrixCache::fingerprint() bit-for-bit under the default backend.
  [[nodiscard]] std::uint64_t delay_fingerprint() const {
    return oracle_->fingerprint();
  }

  // ---- Introspection ------------------------------------------------------
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return capacities_.size();
  }
  [[nodiscard]] bool is_active(std::size_t device_index) const {
    return device_index < assignment_.size() &&
           assignment_[device_index] != gap::kUnassigned;
  }
  /// Server of an active device.
  [[nodiscard]] std::size_t server_of(std::size_t device_index) const;
  /// Mean shortest-path delay over active devices (ms).
  [[nodiscard]] double avg_delay_ms() const noexcept;
  [[nodiscard]] double max_utilization() const noexcept;
  [[nodiscard]] bool feasible() const noexcept;
  [[nodiscard]] const std::vector<double>& loads() const noexcept {
    return loads_;
  }

  // ---- Deep validation -----------------------------------------------------
  /// What check_invariants() additionally enforces beyond the always-true
  /// structural invariants. The two opt-in flags exist because the engine
  /// deliberately relaxes them in documented states: the overload fallback
  /// places past capacity when no healthy server has room, and deferred
  /// drain (fail_server(j, false)) leaves residents on a failed server
  /// until evacuate_server().
  struct InvariantOptions {
    /// Every healthy server within capacity (the paper's "no edge device
    /// overloaded" guarantee). Assert only when no overload fallback is in
    /// play.
    bool require_feasible = false;
    /// No device assigned to a failed server. Assert only when no deferred
    /// drain is pending.
    bool forbid_failed_residents = false;
    /// Engine trees spot-checked bit-for-bit against from-scratch Dijkstra
    /// (rotated by epoch). 0 skips the Dijkstra work.
    std::size_t delay_spot_checks = 1;
  };

  /// Deep cross-subsystem validation, reported through the contracts
  /// failure handler (src/util/contracts.hpp). Always checked:
  ///  - slot accounting: devices/assignment/delay rows stay parallel;
  ///    every slot is either active or parked on the free list exactly
  ///    once; active_ matches;
  ///  - load accounting: loads_[j] equals the demand sum of j's residents,
  ///    and assignments point at real servers;
  ///  - slot<->row binding: an active slot's delay row is bound to its
  ///    graph node, a free slot's row is unbound;
  ///  - node recycling: live graph nodes == routers + servers + active
  ///    devices (a leak here is what bench_m2's gates watch);
  ///  - the underlying NetworkTopology, IncrementalDelayEngine and
  ///    DelayOracle invariants (see their check_invariants()).
  /// Cold path; meant for tests and sampled bench epochs.
  void check_invariants(const InvariantOptions& options) const;
  void check_invariants() const { check_invariants(InvariantOptions()); }

  // Churn bookkeeping (leak regression gates key off these: slot and node
  // counts must track peak population, never cumulative arrivals).
  /// Device slots ever allocated (== delay rows held).
  [[nodiscard]] std::size_t device_slot_count() const noexcept {
    return devices_.size();
  }
  /// Departed slots awaiting reuse.
  [[nodiscard]] std::size_t free_slot_count() const noexcept {
    return free_slots_.size();
  }
  [[nodiscard]] std::size_t graph_node_count() const noexcept {
    return net_.graph.node_count();
  }
  [[nodiscard]] std::size_t live_graph_node_count() const noexcept {
    return net_.graph.live_node_count();
  }

 private:
  friend struct DynamicClusterTestPeer;  ///< corruption hook for tests

  struct ServerChoice {
    std::size_t server;
    bool feasible;  ///< false => overload fallback (least-utilized healthy)
  };

  /// (Re)binds `slot`'s delay row to its graph node; the oracle (re)fills
  /// it from the engine's per-server trees (eagerly or lazily, per backend).
  void refresh_delay_row(std::size_t slot);
  /// Throws std::invalid_argument unless u and v are router nodes.
  void require_backbone(topo::NodeId u, topo::NodeId v) const;
  /// Refreshes the oracle and packages the per-update engine deltas.
  LinkUpdateReport finish_link_update(const topo::incr::EngineStats& before,
                                      double latency_ms);
  /// Discards dirty notifications caused by device attach/detach: a device
  /// is a single-access-link leaf, so only its own distances move, and its
  /// row is (re)bound or unbound explicitly by the caller.
  void absorb_device_churn();
  /// Acquires a graph node at `device`'s position (recycled when possible),
  /// wires the access link to the nearest router, and installs the device
  /// into `slot` with a fresh delay row. No assignment yet.
  void attach_device(std::size_t slot, const workload::IotDevice& device);
  /// Releases `slot`'s graph node + access link back to the free list.
  void detach_device(std::size_t slot);
  /// Cheapest feasible healthy server, else the least-utilized healthy one
  /// (feasible == false). Throws std::logic_error if every server is
  /// failed — callers must be told rather than silently given server 0.
  [[nodiscard]] ServerChoice cheapest_feasible_server(
      std::size_t device_index) const;
  /// Assigns `slot` per cheapest_feasible_server and applies the load.
  JoinResult place_device(std::size_t slot);

  topo::NetworkTopology net_;   // bounded by peak population (node recycling)
  // Per-server shortest-path trees + versioned delay rows over net_; all
  // topology mutations route through engine_ so the trees stay exact.
  // Declared right after net_ (initialization order matters).
  topo::incr::IncrementalDelayEngine engine_;
  // Serves the per-device delay rows (row i == device slot i); backend
  // chosen by ConfigureRequest::oracle (default: exact, bit-identical to
  // the pre-oracle DelayMatrixCache).
  std::unique_ptr<topo::oracle::DelayOracle> oracle_;
  topo::LinkDelayModel delay_model_;
  std::vector<topo::NodeId> router_nodes_;
  std::vector<topo::Point2D> router_positions_;

  // Per device slot. Active slots hold a served device; departed slots are
  // parked on free_slots_ (assignment kUnassigned) and recycled by join().
  std::vector<workload::IotDevice> devices_;
  gap::Assignment assignment_;
  std::vector<std::size_t> free_slots_;  // recycled LIFO
  std::vector<topo::NodeId> churn_scratch_;

  std::vector<double> capacities_;
  std::vector<double> loads_;
  std::vector<bool> failed_;
  std::size_t active_ = 0;

  // Live scoring function (see placement_cost()); fixed at construction
  // from the ConfigureRequest.
  CostModel cost_model_ = CostModel::kTopologyAware;
  double penalty_factor_ = 10.0;

  // Staleness provenance for asynchronous move plans.
  std::vector<std::uint64_t> generations_;  // parallel to devices_
  std::uint64_t assignment_version_ = 0;
};

}  // namespace tacc
