// The algorithm registry: one enum naming every solver in the library and a
// factory that wires options through — the single place experiments and the
// public API select algorithms from.
#pragma once

#include <string_view>
#include <vector>

#include "rl/qlearning.hpp"
#include "rl/ucb_rollout.hpp"
#include "solvers/bottleneck.hpp"
#include "solvers/branch_and_bound.hpp"
#include "solvers/genetic.hpp"
#include "solvers/grasp.hpp"
#include "solvers/local_search.hpp"
#include "solvers/tabu.hpp"
#include "solvers/simulated_annealing.hpp"
#include "solvers/solver.hpp"

namespace tacc {

enum class Algorithm {
  // Baselines ("state of the art" comparison set).
  kRandom,
  kRoundRobin,
  kGreedyNearest,       ///< capacity-oblivious nearest edge
  kGreedyBestFit,
  kRegretGreedy,
  kLocalSearch,
  kSimulatedAnnealing,
  kGrasp,
  kTabu,
  kGenetic,
  kFlowRelaxRepair,
  kBottleneck,          ///< minimizes MAX delay (different objective)
  kBranchAndBound,      ///< exact; small instances only
  // The paper's RL-based heuristics.
  kQLearning,
  kSarsa,
  kUcbRollout,
};

[[nodiscard]] std::string_view to_string(Algorithm algorithm) noexcept;
/// Parses the names printed by to_string, ignoring ASCII case
/// ("Q-Learning" == "q-learning"); throws std::invalid_argument.
[[nodiscard]] Algorithm algorithm_from_string(std::string_view name);

/// Every algorithm (including the exact solver).
[[nodiscard]] std::vector<Algorithm> all_algorithms();
/// The head-to-head comparison set used by most experiments (everything
/// scalable: no branch-and-bound, no pure-random floor).
[[nodiscard]] std::vector<Algorithm> comparison_algorithms();
/// Just the paper's three RL heuristics.
[[nodiscard]] std::vector<Algorithm> rl_algorithms();

/// Options bundle for make_solver; per-family options with sane defaults.
struct AlgorithmOptions {
  std::uint64_t seed = 1;
  rl::RlOptions rl;                       ///< Q-learning / SARSA
  rl::UcbRolloutOptions ucb;
  solvers::LocalSearchOptions local_search;
  solvers::SimulatedAnnealingOptions annealing;
  solvers::GraspOptions grasp;
  solvers::TabuOptions tabu;
  solvers::GeneticOptions genetic;
  solvers::BranchAndBoundOptions branch_and_bound;

  /// Propagates `seed` into every per-family option that has one.
  void apply_seed(std::uint64_t new_seed);
};

[[nodiscard]] solvers::SolverPtr make_solver(
    Algorithm algorithm, const AlgorithmOptions& options = {});

}  // namespace tacc
