// Umbrella header: the full public API of the TACC library.
//
// TACC — Topology Aware Cluster Configuration — reproduces Rajashekar,
// Paul, Karmakar & Sidhanta (ICDCS 2022): assigning IoT devices to edge
// servers to minimize communication delay (a Generalized Assignment
// Problem) via RL-based heuristics, with classical baselines, an exact
// solver, lower bounds, and a packet-level simulator for validation.
#pragma once

#include "core/algorithms.hpp"    // Algorithm enum + make_solver
#include "core/configurator.hpp"  // ClusterConfigurator / ClusterConfiguration
#include "core/dynamic.hpp"       // DynamicCluster (join/leave/rebalance)
#include "core/experiments.hpp"   // repeated-run harness
#include "core/scenario.hpp"      // Scenario presets & generation
#include "runtime/portfolio.hpp"  // parallel portfolio solve runtime
#include "sim/simulator.hpp"      // packet-level discrete-event simulation
#include "solvers/flow_based.hpp" // lower bounds
