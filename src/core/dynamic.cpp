#include "core/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "topology/shortest_paths.hpp"
#include "util/contracts.hpp"

namespace tacc {

namespace {
constexpr double kEps = 1e-9;
}

DynamicCluster::DynamicCluster(const Scenario& scenario, Algorithm initial,
                               const AlgorithmOptions& options)
    : DynamicCluster(scenario, ConfigureRequest{initial, options}) {}

DynamicCluster::DynamicCluster(const Scenario& scenario,
                               const ConfigureRequest& request)
    : net_(scenario.network()),
      engine_(net_),
      oracle_(topo::oracle::make_oracle(request.oracle, engine_)),
      delay_model_(scenario.params().delay_model),
      cost_model_(request.cost_model),
      penalty_factor_(request.penalty_factor) {
  for (topo::NodeId node = 0; node < net_.graph.node_count(); ++node) {
    if (net_.kinds[node] == topo::NodeKind::kRouter) {
      router_nodes_.push_back(node);
      router_positions_.push_back(net_.positions[node]);
    }
  }

  const auto& wl = scenario.workload();
  devices_ = wl.iot;
  capacities_.reserve(wl.edges.size());
  for (const auto& server : wl.edges) capacities_.push_back(server.capacity);

  const ClusterConfigurator configurator(scenario);
  const ClusterConfiguration conf = configurator.configure(request);
  assignment_ = conf.assignment();

  loads_.assign(capacities_.size(), 0.0);
  failed_.assign(capacities_.size(), false);
  generations_.assign(devices_.size(), 0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    // Filled from the engine's server trees — the same Dijkstra values the
    // scenario's instance matrix was built from.
    oracle_->bind_row(i, net_.iot_nodes[i]);
    const auto j = static_cast<std::size_t>(assignment_[i]);
    loads_[j] += devices_[i].demand;
  }
  active_ = devices_.size();
}

double DynamicCluster::placement_cost(std::size_t device_index,
                                      std::size_t server) const {
  const double delay = oracle_->delay_ms(device_index, server);
  const workload::IotDevice& device = devices_[device_index];
  double cost = device.request_rate_hz * delay;
  // kEuclidean deliberately scores as kTopologyAware here: the live engine
  // only ever knows true shortest-path delays (see the ctor comment).
  if (cost_model_ == CostModel::kDeadlinePenalized &&
      delay > device.deadline_ms) {
    cost *= penalty_factor_;
  }
  return cost;
}

double DynamicCluster::total_cost() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (assignment_[i] == gap::kUnassigned) continue;
    sum += placement_cost(i, static_cast<std::size_t>(assignment_[i]));
  }
  return sum;
}

void DynamicCluster::refresh_delay_row(std::size_t slot) {
  oracle_->bind_row(slot, net_.iot_nodes[slot]);
}

void DynamicCluster::absorb_device_churn() {
  churn_scratch_.clear();
  engine_.drain_dirty(churn_scratch_);
}

DynamicCluster::ServerChoice DynamicCluster::cheapest_feasible_server(
    std::size_t device_index) const {
  const double demand = devices_[device_index].demand;

  std::size_t best = capacities_.size();
  double best_cost = std::numeric_limits<double>::infinity();
  std::size_t least_loaded = capacities_.size();
  double least_utilization = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < capacities_.size(); ++j) {
    if (failed_[j]) continue;
    const double new_load = loads_[j] + demand;
    const double cost = placement_cost(device_index, j);
    if (new_load <= capacities_[j] + kEps && cost < best_cost) {
      best = j;
      best_cost = cost;
    }
    const double utilization = new_load / capacities_[j];
    if (utilization < least_utilization) {
      least_utilization = utilization;
      least_loaded = j;
    }
  }
  if (best != capacities_.size()) return {best, true};
  if (least_loaded == capacities_.size()) {
    throw std::logic_error(
        "DynamicCluster::cheapest_feasible_server: every server has failed");
  }
  return {least_loaded, false};
}

void DynamicCluster::attach_device(std::size_t slot,
                                   const workload::IotDevice& device) {
  // Attach to the nearest router with a wireless access link.
  topo::NodeId nearest = router_nodes_.front();
  double nearest_distance = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < router_nodes_.size(); ++r) {
    const double d =
        topo::euclidean_distance(router_positions_[r], device.position);
    if (d < nearest_distance) {
      nearest_distance = d;
      nearest = router_nodes_[r];
    }
  }
  const topo::NodeId node =
      engine_.acquire_node(device.position, topo::NodeKind::kIotDevice);
  engine_.add_link(node, nearest,
                   delay_model_.access_link(nearest_distance));
  absorb_device_churn();

  if (slot == devices_.size()) {
    devices_.push_back(device);
    assignment_.push_back(gap::kUnassigned);
    generations_.push_back(0);
    net_.iot_nodes.push_back(node);
  } else {
    devices_[slot] = device;
    assignment_[slot] = gap::kUnassigned;
    net_.iot_nodes[slot] = node;
  }
  refresh_delay_row(slot);
}

void DynamicCluster::detach_device(std::size_t slot) {
  oracle_->unbind_row(slot);
  engine_.release_node(net_.iot_nodes[slot]);
  absorb_device_churn();
  net_.iot_nodes[slot] = topo::kInvalidNode;
}

JoinResult DynamicCluster::place_device(std::size_t slot) {
  TACC_REQUIRE(slot < devices_.size());
  const ServerChoice choice = cheapest_feasible_server(slot);
  TACC_ENSURE(choice.server < capacities_.size() && !failed_[choice.server],
              "placement must land on a healthy server");
  assignment_[slot] = static_cast<std::int32_t>(choice.server);
  loads_[choice.server] += devices_[slot].demand;
  ++assignment_version_;
  TACC_ENSURE(!choice.feasible ||
                  loads_[choice.server] <= capacities_[choice.server] + kEps,
              "feasible placement overloaded its server");
  return {slot, choice.server, choice.feasible, !choice.feasible,
          placement_cost(slot, choice.server)};
}

JoinResult DynamicCluster::join(const workload::IotDevice& device) {
  std::size_t slot = devices_.size();
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  attach_device(slot, device);
  const JoinResult result = place_device(slot);
  ++active_;
  return result;
}

JoinResult DynamicCluster::move(std::size_t device_index,
                                topo::Point2D new_position) {
  if (!is_active(device_index)) {
    throw std::invalid_argument("DynamicCluster::move: not active");
  }
  const auto from = static_cast<std::size_t>(assignment_[device_index]);
  loads_[from] -= devices_[device_index].demand;
  workload::IotDevice device = devices_[device_index];
  device.position = new_position;
  detach_device(device_index);
  attach_device(device_index, device);
  return place_device(device_index);
}

JoinResult DynamicCluster::move_pinned(std::size_t device_index,
                                       topo::Point2D new_position) {
  if (!is_active(device_index)) {
    throw std::invalid_argument("DynamicCluster::move_pinned: not active");
  }
  const auto pinned = static_cast<std::size_t>(assignment_[device_index]);
  workload::IotDevice device = devices_[device_index];
  device.position = new_position;
  detach_device(device_index);
  attach_device(device_index, device);
  if (failed_[pinned]) {
    // The pinned server went down (deferred evacuation): a handover must
    // never land a device back on a failed server.
    loads_[pinned] -= device.demand;
    return place_device(device_index);
  }
  assignment_[device_index] = static_cast<std::int32_t>(pinned);
  ++assignment_version_;
  // Score through the shared CostModel rather than re-deriving delay
  // locally — the "no reconfiguration" baseline and the re-optimizer must
  // price the same placement identically.
  return {device_index, pinned, loads_[pinned] <= capacities_[pinned] + kEps,
          false, placement_cost(device_index, pinned)};
}

void DynamicCluster::leave(std::size_t device_index) {
  if (device_index >= devices_.size() ||
      assignment_[device_index] == gap::kUnassigned) {
    throw std::invalid_argument("DynamicCluster::leave: not active");
  }
  const auto j = static_cast<std::size_t>(assignment_[device_index]);
  loads_[j] -= devices_[device_index].demand;
  TACC_ENSURE(loads_[j] >= -kEps,
              "leave drove a server's load negative — double free?");
  assignment_[device_index] = gap::kUnassigned;
  detach_device(device_index);
  free_slots_.push_back(device_index);
  ++generations_[device_index];  // recycled occupants are a new generation
  ++assignment_version_;
  --active_;
}

std::size_t DynamicCluster::rebalance(std::size_t max_moves) {
  std::size_t moves = 0;
  bool improved = true;
  while (improved && moves < max_moves) {
    improved = false;
    for (std::size_t i = 0; i < devices_.size() && moves < max_moves; ++i) {
      if (assignment_[i] == gap::kUnassigned) continue;
      const auto from = static_cast<std::size_t>(assignment_[i]);
      const double demand = devices_[i].demand;
      std::size_t best = from;
      double best_cost = placement_cost(i, from);
      for (std::size_t j = 0; j < capacities_.size(); ++j) {
        if (j == from || failed_[j]) continue;
        if (loads_[j] + demand > capacities_[j] + kEps) continue;
        const double cost = placement_cost(i, j);
        if (cost < best_cost - kEps) {
          best_cost = cost;
          best = j;
        }
      }
      if (best != from) {
        loads_[from] -= demand;
        loads_[best] += demand;
        assignment_[i] = static_cast<std::int32_t>(best);
        ++assignment_version_;
        ++moves;
        improved = true;
      }
    }
  }
  return moves;
}

std::size_t DynamicCluster::repair(std::size_t max_moves) {
  std::size_t moves = 0;
  for (std::size_t j = 0; j < capacities_.size() && moves < max_moves; ++j) {
    if (failed_[j]) continue;
    while (loads_[j] > capacities_[j] + kEps && moves < max_moves) {
      std::size_t victim = devices_.size();
      std::size_t target = capacities_.size();
      double best_delta = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (assignment_[i] == gap::kUnassigned ||
            static_cast<std::size_t>(assignment_[i]) != j) {
          continue;
        }
        const double demand = devices_[i].demand;
        for (std::size_t k = 0; k < capacities_.size(); ++k) {
          if (k == j || failed_[k]) continue;
          if (loads_[k] + demand > capacities_[k] + kEps) continue;
          const double delta = placement_cost(i, k) - placement_cost(i, j);
          if (delta < best_delta) {
            best_delta = delta;
            victim = i;
            target = k;
          }
        }
      }
      if (victim == devices_.size()) break;  // nothing movable off j
      loads_[j] -= devices_[victim].demand;
      loads_[target] += devices_[victim].demand;
      assignment_[victim] = static_cast<std::int32_t>(target);
      ++assignment_version_;
      ++moves;
    }
  }
  return moves;
}

MovePlanReport DynamicCluster::apply_move_plan(const MovePlan& plan,
                                               BudgetLedger* ledger) {
  MovePlanReport report;
  for (const PlannedMove& move : plan.moves) {
    // Staleness first: the proposal's view of the world must still hold.
    if (move.device >= devices_.size() || !is_active(move.device) ||
        generations_[move.device] != move.generation ||
        static_cast<std::size_t>(assignment_[move.device]) != move.from ||
        move.to >= capacities_.size() || move.to == move.from) {
      ++report.rejected_stale;
      continue;
    }
    if (failed_[move.to]) {
      ++report.rejected_target_failed;
      continue;
    }
    const double demand = devices_[move.device].demand;
    if (loads_[move.to] + demand > capacities_[move.to] + kEps) {
      ++report.rejected_infeasible;
      continue;
    }
    if (ledger != nullptr && !ledger->allows(move.device)) {
      ++report.rejected_budget;
      continue;
    }
    // Score the gain against live delays, not the proposal's prediction.
    report.achieved_gain += placement_cost(move.device, move.from) -
                            placement_cost(move.device, move.to);
    loads_[move.from] -= demand;
    loads_[move.to] += demand;
    assignment_[move.device] = static_cast<std::int32_t>(move.to);
    ++assignment_version_;
    if (ledger != nullptr) ledger->charge(move.device);
    ++report.applied;
  }
  TACC_ENSURE(report.applied + report.rejected() == plan.moves.size(),
              "move plan outcomes must partition the plan");
  return report;
}

EvacuationReport DynamicCluster::fail_server(std::size_t server,
                                             bool evacuate) {
  if (server >= capacities_.size() || failed_[server]) {
    throw std::invalid_argument("DynamicCluster::fail_server: bad server");
  }
  if (healthy_server_count() <= 1) {
    throw std::logic_error(
        "DynamicCluster::fail_server: cannot fail the last healthy server");
  }
  failed_[server] = true;
  return evacuate ? evacuate_server(server) : EvacuationReport{};
}

EvacuationReport DynamicCluster::evacuate_server(std::size_t server) {
  if (server >= capacities_.size() || !failed_[server]) {
    throw std::invalid_argument(
        "DynamicCluster::evacuate_server: server not failed");
  }
  EvacuationReport report;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (assignment_[i] == gap::kUnassigned ||
        static_cast<std::size_t>(assignment_[i]) != server) {
      continue;
    }
    loads_[server] -= devices_[i].demand;
    const JoinResult placed = place_device(i);
    ++report.evacuated;
    if (placed.overload_fallback) ++report.overloaded;
  }
  return report;
}

void DynamicCluster::recover_server(std::size_t server) {
  if (server >= capacities_.size() || !failed_[server]) {
    throw std::invalid_argument(
        "DynamicCluster::recover_server: server not failed");
  }
  failed_[server] = false;
}

std::size_t DynamicCluster::healthy_server_count() const noexcept {
  std::size_t healthy = 0;
  for (bool f : failed_) {
    if (!f) ++healthy;
  }
  return healthy;
}

std::size_t DynamicCluster::server_of(std::size_t device_index) const {
  if (!is_active(device_index)) {
    throw std::invalid_argument("DynamicCluster::server_of: not active");
  }
  return static_cast<std::size_t>(assignment_[device_index]);
}

double DynamicCluster::avg_delay_ms() const noexcept {
  if (active_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (assignment_[i] == gap::kUnassigned) continue;
    sum += oracle_->delay_ms(i, static_cast<std::size_t>(assignment_[i]));
  }
  return sum / static_cast<double>(active_);
}

double DynamicCluster::max_utilization() const noexcept {
  double peak = 0.0;
  for (std::size_t j = 0; j < capacities_.size(); ++j) {
    if (failed_[j]) continue;
    peak = std::max(peak, loads_[j] / capacities_[j]);
  }
  return peak;
}

void DynamicCluster::require_backbone(topo::NodeId u, topo::NodeId v) const {
  if (u >= net_.kinds.size() || v >= net_.kinds.size() ||
      net_.kinds[u] != topo::NodeKind::kRouter ||
      net_.kinds[v] != topo::NodeKind::kRouter) {
    throw std::invalid_argument(
        "DynamicCluster: link endpoints must be router nodes");
  }
}

LinkUpdateReport DynamicCluster::finish_link_update(
    const topo::incr::EngineStats& before, double latency_ms) {
  LinkUpdateReport report;
  report.rows_refreshed = oracle_->refresh();
  const topo::incr::EngineStats& after = engine_.stats();
  report.epoch = after.epoch;
  report.nodes_affected = after.nodes_affected - before.nodes_affected;
  report.nodes_saved = after.nodes_saved - before.nodes_saved;
  report.latency_ms = latency_ms;
  return report;
}

LinkUpdateReport DynamicCluster::fail_link(topo::NodeId u, topo::NodeId v) {
  require_backbone(u, v);
  const topo::incr::EngineStats before = engine_.stats();
  const topo::EdgeProps props = engine_.fail_link(u, v);
  return finish_link_update(before, props.latency_ms);
}

LinkUpdateReport DynamicCluster::restore_link(topo::NodeId u, topo::NodeId v) {
  require_backbone(u, v);
  const topo::incr::EngineStats before = engine_.stats();
  const topo::EdgeProps props = engine_.restore_link(u, v);
  return finish_link_update(before, props.latency_ms);
}

LinkUpdateReport DynamicCluster::set_link_latency(topo::NodeId u,
                                                  topo::NodeId v,
                                                  double latency_ms) {
  require_backbone(u, v);
  const topo::incr::EngineStats before = engine_.stats();
  const topo::EdgeProps previous = engine_.set_link_latency(u, v, latency_ms);
  return finish_link_update(before, previous.latency_ms);
}

void DynamicCluster::check_invariants(const InvariantOptions& options) const {
  // ---- Slot accounting -----------------------------------------------------
  TACC_CHECK_INVARIANT(assignment_.size() == devices_.size(),
                       "assignment must cover every device slot");
  TACC_CHECK_INVARIANT(net_.iot_nodes.size() == devices_.size(),
                       "iot_nodes must cover every device slot");
  TACC_CHECK_INVARIANT(
      loads_.size() == capacities_.size() && failed_.size() == loads_.size(),
      "per-server arrays must stay parallel");
  TACC_CHECK_INVARIANT(generations_.size() == devices_.size(),
                       "slot generations must cover every device slot");

  std::vector<bool> on_free_list(devices_.size(), false);
  for (const std::size_t slot : free_slots_) {
    TACC_CHECK_INVARIANT(slot < devices_.size(),
                         "free slot out of range: " + std::to_string(slot));
    TACC_CHECK_INVARIANT(!on_free_list[slot], "slot on the free list twice: " +
                                                  std::to_string(slot));
    on_free_list[slot] = true;
    TACC_CHECK_INVARIANT(assignment_[slot] == gap::kUnassigned,
                         "free slot still assigned: " + std::to_string(slot));
    TACC_CHECK_INVARIANT(net_.iot_nodes[slot] == topo::kInvalidNode,
                         "free slot still holds a graph node: " +
                             std::to_string(slot));
  }

  // ---- Load accounting + slot<->row binding --------------------------------
  std::size_t active_seen = 0;
  std::vector<double> recomputed(capacities_.size(), 0.0);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (assignment_[i] == gap::kUnassigned) {
      TACC_CHECK_INVARIANT(on_free_list[i],
                           "inactive slot missing from the free list: " +
                               std::to_string(i));
      TACC_CHECK_INVARIANT(
          i >= oracle_->row_count() ||
              oracle_->row_node(i) == topo::kInvalidNode,
          "inactive slot still bound to a delay row: " + std::to_string(i));
      continue;
    }
    ++active_seen;
    TACC_CHECK_INVARIANT(!on_free_list[i],
                         "active slot sits on the free list: " +
                             std::to_string(i));
    const auto j = static_cast<std::size_t>(assignment_[i]);
    TACC_CHECK_INVARIANT(j < capacities_.size(),
                         "assignment points past the server table: slot " +
                             std::to_string(i));
    TACC_CHECK_INVARIANT(devices_[i].demand >= 0.0,
                         "negative demand on slot " + std::to_string(i));
    recomputed[j] += devices_[i].demand;
    TACC_CHECK_INVARIANT(i < oracle_->row_count() &&
                             oracle_->row_node(i) == net_.iot_nodes[i],
                         "delay row bound to the wrong graph node: slot " +
                             std::to_string(i));
    if (options.forbid_failed_residents) {
      TACC_CHECK_INVARIANT(!failed_[j], "device assigned to failed server " +
                                            std::to_string(j));
    }
  }
  TACC_CHECK_INVARIANT(active_seen == active_,
                       "active count out of sync with assignments");
  TACC_CHECK_INVARIANT(active_ + free_slots_.size() == devices_.size(),
                       "slots must be exactly active or free");

  for (std::size_t j = 0; j < capacities_.size(); ++j) {
    TACC_CHECK_INVARIANT(std::abs(loads_[j] - recomputed[j]) <= 1e-6,
                         "load accounting drifted on server " +
                             std::to_string(j) + " (recorded " +
                             std::to_string(loads_[j]) + ", actual " +
                             std::to_string(recomputed[j]) + ")");
    if (options.require_feasible && !failed_[j]) {
      TACC_CHECK_INVARIANT(loads_[j] <= capacities_[j] + kEps,
                           "server " + std::to_string(j) +
                               " past capacity with require_feasible set");
    }
  }

  // ---- Node recycling ------------------------------------------------------
  TACC_CHECK_INVARIANT(
      net_.graph.live_node_count() ==
          router_nodes_.size() + net_.edge_count() + active_,
      "live graph nodes must be exactly routers + servers + active devices");

  // ---- Underlying topology / engine / oracle -------------------------------
  net_.check_invariants();
  engine_.check_invariants(options.delay_spot_checks);
  oracle_->check_invariants();
}

bool DynamicCluster::feasible() const noexcept {
  for (std::size_t j = 0; j < capacities_.size(); ++j) {
    if (loads_[j] > capacities_[j] + kEps) return false;
  }
  return true;
}

}  // namespace tacc
