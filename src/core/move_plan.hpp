// Move plans: batched, budgeted reassignments against a live DynamicCluster.
//
// The background re-optimizer (src/optimize) proposes moves asynchronously
// and applies them later, so every proposal can be stale by the time it
// lands: the device may have left (and its slot been recycled — classic
// ABA), the target server may have failed, or other moves may have eaten
// the capacity headroom the proposal assumed. A MovePlan therefore carries
// enough provenance for DynamicCluster::apply_move_plan() to re-validate
// each move against the live cluster and reject the invalid ones
// individually instead of aborting the batch, reporting exactly what
// happened in a MovePlanReport.
//
// Migration is rate-limited: moving a device churns its sessions, so
// operators cap how much reassignment the optimizer may do per window
// (MigrationBudget), and a BudgetLedger meters plans against that cap —
// both a global moves-per-window budget and a per-device move rate (a
// device that keeps winning the "best move" lottery must not be bounced
// every pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tacc {

/// One proposed reassignment, stamped with the provenance needed to detect
/// staleness at apply time.
struct PlannedMove {
  std::size_t device = 0;       ///< device slot index at proposal time
  std::uint64_t generation = 0; ///< slot generation at proposal (ABA guard)
  std::size_t from = 0;         ///< server the device was on when proposed
  std::size_t to = 0;           ///< proposed destination server
  /// Cost-model improvement the proposer predicted (positive = better).
  double predicted_gain = 0.0;
};

/// A batch of proposed moves, applied atomically under the cluster lock by
/// DynamicCluster::apply_move_plan(). Moves are validated and applied in
/// order, so multi-move plans (e.g. pairwise swaps emitted as two moves)
/// must sequence themselves to keep every intermediate state feasible.
struct MovePlan {
  /// Cluster delay epoch the proposal was computed against (informational —
  /// apply_move_plan() re-validates against live state regardless).
  std::uint64_t delay_epoch = 0;
  std::vector<PlannedMove> moves;

  [[nodiscard]] double predicted_gain() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return moves.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return moves.size(); }
};

/// Per-move outcome accounting for one apply_move_plan() call. Rejections
/// are partitioned by cause; applied + rejected() == plan.size().
struct MovePlanReport {
  std::size_t applied = 0;
  /// Device gone, slot recycled since proposal, the device no longer sits
  /// on `from`, or the move is malformed (to == from / out of range).
  std::size_t rejected_stale = 0;
  std::size_t rejected_target_failed = 0; ///< destination failed mid-plan
  std::size_t rejected_infeasible = 0;    ///< destination out of headroom
  std::size_t rejected_budget = 0;        ///< migration budget exhausted
  /// Sum of live cost-model improvement over applied moves (may differ from
  /// the plan's predicted gain when delays moved since proposal).
  double achieved_gain = 0.0;

  [[nodiscard]] std::size_t rejected() const noexcept {
    return rejected_stale + rejected_target_failed + rejected_infeasible +
           rejected_budget;
  }
  [[nodiscard]] bool clean() const noexcept { return rejected() == 0; }
};

/// Operator-facing migration rate limits, metered per fixed time window.
struct MigrationBudget {
  std::size_t max_moves_per_window = 32;       ///< global cap per window
  std::size_t max_device_moves_per_window = 1; ///< per-device cap per window
  double window_s = 10.0;                      ///< window length (seconds)
};

/// Meters applied moves against a MigrationBudget. The owner advances the
/// ledger's clock (advance()) before consulting it; windows are aligned to
/// multiples of window_s on that clock, and a window roll resets both the
/// global and the per-device spend. Per-device spend is keyed by slot
/// index, so a recycled slot inherits its predecessor's spend until the
/// window rolls — an acceptable (conservative) approximation.
class BudgetLedger {
 public:
  BudgetLedger() = default;
  explicit BudgetLedger(const MigrationBudget& budget) : budget_(budget) {}

  /// Rolls to the window containing `now_s` (monotone caller clock).
  void advance(double now_s);
  /// Global headroom left in the current window.
  [[nodiscard]] std::size_t remaining() const noexcept;
  /// True when both the global and `device`'s per-device cap have headroom.
  [[nodiscard]] bool allows(std::size_t device) const;
  /// Records one applied move for `device`.
  void charge(std::size_t device);

  [[nodiscard]] const MigrationBudget& budget() const noexcept {
    return budget_;
  }
  [[nodiscard]] std::size_t spent() const noexcept { return spent_; }
  [[nodiscard]] std::uint64_t window_index() const noexcept { return window_; }

 private:
  MigrationBudget budget_;
  std::uint64_t window_ = 0;
  std::size_t spent_ = 0;
  std::unordered_map<std::size_t, std::size_t> device_spend_;
};

}  // namespace tacc
