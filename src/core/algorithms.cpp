#include "core/algorithms.hpp"

#include <cctype>
#include <stdexcept>

#include "solvers/constructive.hpp"
#include "solvers/flow_based.hpp"

namespace tacc {

namespace {

/// ASCII case-insensitive equality (algorithm names are pure ASCII).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto lower = [](char c) {
      return static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    };
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

}  // namespace

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kRandom:
      return "random";
    case Algorithm::kRoundRobin:
      return "round-robin";
    case Algorithm::kGreedyNearest:
      return "greedy-nearest";
    case Algorithm::kGreedyBestFit:
      return "greedy-bestfit";
    case Algorithm::kRegretGreedy:
      return "regret-greedy";
    case Algorithm::kLocalSearch:
      return "local-search";
    case Algorithm::kSimulatedAnnealing:
      return "simulated-annealing";
    case Algorithm::kGrasp:
      return "grasp";
    case Algorithm::kTabu:
      return "tabu";
    case Algorithm::kGenetic:
      return "genetic";
    case Algorithm::kFlowRelaxRepair:
      return "flow-relax-repair";
    case Algorithm::kBottleneck:
      return "bottleneck";
    case Algorithm::kBranchAndBound:
      return "branch-and-bound";
    case Algorithm::kQLearning:
      return "q-learning";
    case Algorithm::kSarsa:
      return "sarsa";
    case Algorithm::kUcbRollout:
      return "ucb-rollout";
  }
  return "?";
}

Algorithm algorithm_from_string(std::string_view name) {
  for (Algorithm a : all_algorithms()) {
    if (iequals(to_string(a), name)) return a;
  }
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kRandom,          Algorithm::kRoundRobin,
          Algorithm::kGreedyNearest,   Algorithm::kGreedyBestFit,
          Algorithm::kRegretGreedy,    Algorithm::kLocalSearch,
          Algorithm::kSimulatedAnnealing, Algorithm::kGrasp,
          Algorithm::kTabu,            Algorithm::kGenetic,
          Algorithm::kFlowRelaxRepair, Algorithm::kBottleneck,
          Algorithm::kBranchAndBound,  Algorithm::kQLearning,
          Algorithm::kSarsa,           Algorithm::kUcbRollout};
}

std::vector<Algorithm> comparison_algorithms() {
  return {Algorithm::kGreedyNearest,   Algorithm::kGreedyBestFit,
          Algorithm::kRegretGreedy,    Algorithm::kLocalSearch,
          Algorithm::kSimulatedAnnealing, Algorithm::kGrasp,
          Algorithm::kTabu,            Algorithm::kGenetic,
          Algorithm::kFlowRelaxRepair, Algorithm::kQLearning,
          Algorithm::kSarsa,           Algorithm::kUcbRollout};
}

std::vector<Algorithm> rl_algorithms() {
  return {Algorithm::kQLearning, Algorithm::kSarsa, Algorithm::kUcbRollout};
}

void AlgorithmOptions::apply_seed(std::uint64_t new_seed) {
  seed = new_seed;
  rl.seed = new_seed;
  ucb.seed = new_seed;
  local_search.seed = new_seed;
  annealing.seed = new_seed;
  grasp.seed = new_seed;
  tabu.seed = new_seed;
  genetic.seed = new_seed;
}

solvers::SolverPtr make_solver(Algorithm algorithm,
                               const AlgorithmOptions& options) {
  switch (algorithm) {
    case Algorithm::kRandom:
      return std::make_unique<solvers::RandomSolver>(options.seed);
    case Algorithm::kRoundRobin:
      return std::make_unique<solvers::RoundRobinSolver>();
    case Algorithm::kGreedyNearest:
      return std::make_unique<solvers::GreedyNearestSolver>();
    case Algorithm::kGreedyBestFit:
      return std::make_unique<solvers::GreedyBestFitSolver>();
    case Algorithm::kRegretGreedy:
      return std::make_unique<solvers::RegretGreedySolver>();
    case Algorithm::kLocalSearch:
      return std::make_unique<solvers::LocalSearchSolver>(
          options.local_search);
    case Algorithm::kSimulatedAnnealing:
      return std::make_unique<solvers::SimulatedAnnealingSolver>(
          options.annealing);
    case Algorithm::kGrasp:
      return std::make_unique<solvers::GraspSolver>(options.grasp);
    case Algorithm::kTabu:
      return std::make_unique<solvers::TabuSolver>(options.tabu);
    case Algorithm::kGenetic:
      return std::make_unique<solvers::GeneticSolver>(options.genetic);
    case Algorithm::kFlowRelaxRepair:
      return std::make_unique<solvers::FlowRelaxRepairSolver>(
          solvers::FlowRelaxRepairOptions{options.seed});
    case Algorithm::kBottleneck:
      return std::make_unique<solvers::BottleneckSolver>();
    case Algorithm::kBranchAndBound:
      return std::make_unique<solvers::BranchAndBoundSolver>(
          options.branch_and_bound);
    case Algorithm::kQLearning:
      return std::make_unique<rl::QLearningSolver>(options.rl);
    case Algorithm::kSarsa:
      return std::make_unique<rl::SarsaSolver>(options.rl);
    case Algorithm::kUcbRollout:
      return std::make_unique<rl::UcbRolloutSolver>(options.ucb);
  }
  throw std::invalid_argument("make_solver: unknown algorithm");
}

}  // namespace tacc
