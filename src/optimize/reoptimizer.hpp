// Background re-optimization: budgeted incremental repair of a live
// DynamicCluster.
//
// The paper's configuration quality only holds at solve time; under churn
// the greedy local placements drift from the portfolio optimum. Instead of
// periodically re-solving from scratch (expensive, and a full reassignment
// churns every session), a Reoptimizer continuously narrows the gap with
// bounded local-search passes:
//
//   proposal      propose_plan() scans a bounded, dirty-row-prioritized
//                 slice of the population and emits a MovePlan
//   budget filter the plan is capped by the BudgetLedger's remaining
//                 window headroom before proposal, and every move is
//                 re-checked against the per-device rate at apply
//   atomic apply  DynamicCluster::apply_move_plan() under the cluster
//                 lock, optionally bracketed by check_invariants()
//   ledger        ReoptStats accumulates proposed/applied/rejected moves
//                 and predicted/achieved gain; the outcome counts
//                 partition the proposals exactly (check_invariants())
//
// Threading: the owner hands the Reoptimizer the tacc::Mutex that
// serializes all mutation of the cluster (in service::Engine, the
// per-session cluster mutex). The background thread only ever try_locks
// it — the serving path always wins, and stop() can never deadlock
// against a lock holder asking the optimizer to shut down. run_pass()
// takes the lock unconditionally for deterministic use in tests and
// benches. The try-lock-only rule and the cluster/stats guard split are
// Clang Thread Safety-annotated and enforced at compile time.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "core/dynamic.hpp"
#include "core/move_plan.hpp"
#include "optimize/planner.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::opt {

struct ReoptOptions {
  MigrationBudget budget;
  PlannerOptions planner;
  /// Pause between background passes (the thread try_locks the cluster
  /// mutex after each pause; a busy serving path just skips the pass).
  double interval_ms = 50.0;
  /// Bracket every non-empty apply with DynamicCluster::check_invariants()
  /// (delay_spot_checks Dijkstras per check). Cold-path insurance for
  /// soaks; leave off in production serving.
  bool validate = false;
  std::size_t validate_spot_checks = 1;
  /// Seed for the planner's swap-sampling stream.
  std::uint64_t seed = 0x0500B1ull;
};

/// Cumulative optimizer ledger. moves_proposed is partitioned exactly by
/// moves_applied + the four rejection counts.
struct ReoptStats {
  std::uint64_t passes = 0;          ///< run_pass() calls (incl. empty)
  std::uint64_t plans = 0;           ///< non-empty plans applied
  std::uint64_t moves_proposed = 0;
  std::uint64_t moves_applied = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_target_failed = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_budget = 0;
  double predicted_gain = 0.0;  ///< Σ plan predictions (cost-model units)
  double achieved_gain = 0.0;   ///< Σ live improvement actually applied

  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_stale + rejected_target_failed + rejected_infeasible +
           rejected_budget;
  }
};

class Reoptimizer {
 public:
  /// `cluster_mutex` must be the mutex serializing every mutation of
  /// `cluster`; both must outlive the Reoptimizer.
  Reoptimizer(DynamicCluster& cluster, Mutex& cluster_mutex,
              const ReoptOptions& options = {});
  ~Reoptimizer();  // stops the background thread if running

  Reoptimizer(const Reoptimizer&) = delete;
  Reoptimizer& operator=(const Reoptimizer&) = delete;

  /// Launches the background pass loop (idempotent).
  void start();
  /// Stops and joins the background thread (idempotent). Safe to call
  /// while holding the cluster mutex: the thread never blocks on it.
  void stop();
  [[nodiscard]] bool running() const noexcept;

  /// One synchronous pass under the cluster lock: advance the budget
  /// window, propose, apply, account. Returns moves applied.
  std::size_t run_pass() TACC_EXCLUDES(cluster_mutex_);

  [[nodiscard]] ReoptStats stats() const TACC_EXCLUDES(stats_mutex_);
  [[nodiscard]] const ReoptOptions& options() const noexcept {
    return options_;
  }

  /// Validates the stats ledger identity (proposed == applied + rejected)
  /// through the contracts failure handler.
  void check_invariants() const;

 private:
  void loop(const std::stop_token& token) TACC_EXCLUDES(cluster_mutex_);
  std::size_t pass_locked() TACC_REQUIRES(cluster_mutex_);
  [[nodiscard]] double elapsed_s() const;

  /// The cluster and the planner/budget state that mutates it are all
  /// guarded by *cluster_mutex_ (owned by the caller, not us).
  Mutex* const cluster_mutex_;
  DynamicCluster* const cluster_ TACC_PT_GUARDED_BY(cluster_mutex_);
  ReoptOptions options_;
  PlannerState state_ TACC_GUARDED_BY(cluster_mutex_);
  BudgetLedger ledger_ TACC_GUARDED_BY(cluster_mutex_);
  std::chrono::steady_clock::time_point epoch_;  // immutable after ctor

  mutable Mutex stats_mutex_;
  ReoptStats stats_ TACC_GUARDED_BY(stats_mutex_);

  std::jthread thread_;
};

}  // namespace tacc::opt
