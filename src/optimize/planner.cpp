#include "optimize/planner.hpp"

#include <algorithm>
#include <vector>

namespace tacc::opt {

namespace {
constexpr double kEps = 1e-9;  // matches DynamicCluster's feasibility slack
}

MovePlan propose_plan(const DynamicCluster& cluster,
                      const PlannerOptions& options, PlannerState& state) {
  MovePlan plan;
  plan.delay_epoch = cluster.delay_epoch();
  const std::size_t slots = cluster.device_slot_count();
  const std::size_t servers = cluster.server_count();
  if (slots == 0 || servers < 2 || options.max_plan_moves == 0) {
    state.seen_epoch = plan.delay_epoch;
    return plan;
  }

  // Scan order: rows rewritten since the last pass (link churn moved their
  // delays) first, then round-robin so the whole population is revisited
  // across passes even when nothing is dirty.
  std::vector<std::size_t> order;
  order.reserve(std::min(options.scan_limit, slots));
  std::vector<bool> queued(slots, false);
  for (std::size_t i = 0; i < slots && order.size() < options.scan_limit;
       ++i) {
    if (cluster.is_active(i) &&
        cluster.delay_row_epoch(i) > state.seen_epoch) {
      order.push_back(i);
      queued[i] = true;
    }
  }
  const std::size_t cursor = slots == 0 ? 0 : state.cursor % slots;
  std::size_t stepped = 0;
  for (; stepped < slots && order.size() < options.scan_limit; ++stepped) {
    const std::size_t i = (cursor + stepped) % slots;
    if (cluster.is_active(i) && !queued[i]) {
      order.push_back(i);
      queued[i] = true;
    }
  }
  state.cursor = (cursor + stepped) % slots;
  state.seen_epoch = plan.delay_epoch;

  // The plan's own view of loads and per-plan move markers: a batch must
  // not collectively overload a target, and a device moves at most once
  // per plan (its cached cost terms would be stale after the first move).
  std::vector<double> planned = cluster.loads();
  const std::vector<double>& caps = cluster.capacities();
  std::vector<bool> moved(slots, false);

  // ---- Single-device reassignment moves ------------------------------------
  // Improvements blocked only by the target's headroom are remembered: the
  // chain stage below may free that headroom by relocating a resident.
  struct Blocked {
    std::size_t device;
    std::size_t target;
    double gain;  ///< direct cost gain, ignoring capacity
  };
  std::vector<Blocked> blocked;
  for (const std::size_t i : order) {
    if (plan.moves.size() >= options.max_plan_moves) break;
    const std::size_t from = cluster.server_of(i);
    const double demand = cluster.device(i).demand;
    const double base_cost = cluster.placement_cost(i, from);
    double best_cost = base_cost;
    std::size_t best = from;
    double best_tight_cost = base_cost;  // cheapest regardless of headroom
    std::size_t best_tight = from;
    for (std::size_t j = 0; j < servers; ++j) {
      if (j == from || cluster.server_failed(j)) continue;
      const double cost = cluster.placement_cost(i, j);
      if (cost < best_tight_cost) {
        best_tight_cost = cost;
        best_tight = j;
      }
      if (planned[j] + demand > caps[j] + kEps) continue;
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    const double gain = base_cost - best_cost;
    if (best != from && gain > options.min_gain) {
      plan.moves.push_back(
          {i, cluster.slot_generation(i), from, best, gain});
      planned[from] -= demand;
      planned[best] += demand;
      moved[i] = true;
    } else if (best_tight != from &&
               base_cost - best_tight_cost > options.min_gain) {
      blocked.push_back({i, best_tight, base_cost - best_tight_cost});
    }
  }

  // ---- Eviction chains -----------------------------------------------------
  // Capacity-tight escape: device i wants server t but t is full, so
  // relocate t's cheapest-to-move resident r to its own best feasible
  // server first, then move i in — two moves, required to win on net gain.
  // Ordered r -> k then i -> t, so apply_move_plan's live-load validation
  // accepts both halves.
  std::sort(blocked.begin(), blocked.end(),
            [](const Blocked& x, const Blocked& y) { return x.gain > y.gain; });
  std::size_t chains = 0;
  for (const Blocked& candidate : blocked) {
    if (chains >= options.chain_limit) break;
    if (plan.moves.size() + 2 > options.max_plan_moves) break;
    const std::size_t i = candidate.device;
    const std::size_t t = candidate.target;
    if (moved[i]) continue;
    ++chains;
    const std::size_t from = cluster.server_of(i);
    const double di = cluster.device(i).demand;
    // Cheapest eviction: resident r of t and landing k minimizing r's cost
    // increase, such that t gains enough headroom for i.
    std::size_t best_r = slots;
    std::size_t best_k = servers;
    double best_loss = candidate.gain - options.min_gain;
    for (std::size_t r = 0; r < slots; ++r) {
      if (r == i || moved[r] || !cluster.is_active(r) ||
          cluster.server_of(r) != t) {
        continue;
      }
      const double dr = cluster.device(r).demand;
      if (planned[t] - dr + di > caps[t] + kEps) continue;  // not enough room
      const double r_base = cluster.placement_cost(r, t);
      for (std::size_t k = 0; k < servers; ++k) {
        if (k == t || cluster.server_failed(k)) continue;
        if (planned[k] + dr > caps[k] + kEps) continue;
        const double loss = cluster.placement_cost(r, k) - r_base;
        if (loss < best_loss) {
          best_loss = loss;
          best_r = r;
          best_k = k;
        }
      }
    }
    if (best_r == slots) continue;
    const double dr = cluster.device(best_r).demand;
    plan.moves.push_back({best_r, cluster.slot_generation(best_r), t, best_k,
                          -best_loss});
    plan.moves.push_back(
        {i, cluster.slot_generation(i), from, t, candidate.gain});
    planned[t] += di - dr;
    planned[best_k] += dr;
    planned[from] -= di;
    moved[i] = true;
    moved[best_r] = true;
  }

  // ---- Sampled pairwise swaps ----------------------------------------------
  // Swaps escape the local optimum where two devices each want the other's
  // (full) server. A swap is emitted as two sequential moves, ordered so
  // the intermediate state stays capacity-feasible (apply_move_plan
  // validates each move against live loads). If the second half is later
  // rejected mid-plan, the lone first half may regress cost slightly; the
  // next pass repairs it.
  for (std::size_t sample = 0;
       sample < options.swap_limit &&
       plan.moves.size() + 2 <= options.max_plan_moves;
       ++sample) {
    const auto a = static_cast<std::size_t>(state.rng.next_below(slots));
    const auto b = static_cast<std::size_t>(state.rng.next_below(slots));
    if (a == b || !cluster.is_active(a) || !cluster.is_active(b) ||
        moved[a] || moved[b]) {
      continue;
    }
    const std::size_t sa = cluster.server_of(a);
    const std::size_t sb = cluster.server_of(b);
    if (sa == sb || cluster.server_failed(sa) || cluster.server_failed(sb)) {
      continue;
    }
    const double gain_a =
        cluster.placement_cost(a, sa) - cluster.placement_cost(a, sb);
    const double gain_b =
        cluster.placement_cost(b, sb) - cluster.placement_cost(b, sa);
    if (gain_a + gain_b <= options.min_gain) continue;
    const double da = cluster.device(a).demand;
    const double db = cluster.device(b).demand;
    // End state must fit...
    if (planned[sb] - db + da > caps[sb] + kEps ||
        planned[sa] - da + db > caps[sa] + kEps) {
      continue;
    }
    // ...and so must the intermediate state after the first half.
    const bool a_first = planned[sb] + da <= caps[sb] + kEps;
    const bool b_first = planned[sa] + db <= caps[sa] + kEps;
    if (!a_first && !b_first) continue;
    const PlannedMove move_a{a, cluster.slot_generation(a), sa, sb, gain_a};
    const PlannedMove move_b{b, cluster.slot_generation(b), sb, sa, gain_b};
    if (a_first) {
      plan.moves.push_back(move_a);
      plan.moves.push_back(move_b);
    } else {
      plan.moves.push_back(move_b);
      plan.moves.push_back(move_a);
    }
    planned[sa] += db - da;
    planned[sb] += da - db;
    moved[a] = true;
    moved[b] = true;
  }

  return plan;
}

}  // namespace tacc::opt
