#include "optimize/reoptimizer.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/mutex.hpp"

namespace tacc::opt {

Reoptimizer::Reoptimizer(DynamicCluster& cluster, Mutex& cluster_mutex,
                         const ReoptOptions& options)
    : cluster_mutex_(&cluster_mutex),
      cluster_(&cluster),
      options_(options),
      state_(options.seed),
      ledger_(options.budget),
      epoch_(std::chrono::steady_clock::now()) {}

Reoptimizer::~Reoptimizer() { stop(); }

void Reoptimizer::start() {
  if (thread_.joinable()) return;
  thread_ = std::jthread(
      [this](const std::stop_token& token) { loop(token); });
}

void Reoptimizer::stop() {
  if (!thread_.joinable()) return;
  thread_.request_stop();
  thread_.join();
  thread_ = std::jthread();
}

bool Reoptimizer::running() const noexcept { return thread_.joinable(); }

double Reoptimizer::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::size_t Reoptimizer::run_pass() {
  const MutexLock lock(cluster_mutex_);
  return pass_locked();
}

std::size_t Reoptimizer::pass_locked() {
  ledger_.advance(elapsed_s());

  {
    const MutexLock stats_lock(&stats_mutex_);
    ++stats_.passes;
  }
  const std::size_t headroom = ledger_.remaining();
  if (headroom == 0) return 0;  // window exhausted; wait for the roll

  // Cap the proposal by the window headroom so a plan never promises more
  // migration than the budget can honour.
  PlannerOptions planner = options_.planner;
  planner.max_plan_moves = std::min(planner.max_plan_moves, headroom);
  const MovePlan plan = propose_plan(*cluster_, planner, state_);
  if (plan.empty()) return 0;

  const DynamicCluster::InvariantOptions validate_options{
      .require_feasible = false,
      .forbid_failed_residents = false,
      .delay_spot_checks = options_.validate_spot_checks};
  if (options_.validate) cluster_->check_invariants(validate_options);
  const MovePlanReport report = cluster_->apply_move_plan(plan, &ledger_);
  if (options_.validate) cluster_->check_invariants(validate_options);

  const MutexLock stats_lock(&stats_mutex_);
  ++stats_.plans;
  stats_.moves_proposed += plan.moves.size();
  stats_.moves_applied += report.applied;
  stats_.rejected_stale += report.rejected_stale;
  stats_.rejected_target_failed += report.rejected_target_failed;
  stats_.rejected_infeasible += report.rejected_infeasible;
  stats_.rejected_budget += report.rejected_budget;
  stats_.predicted_gain += plan.predicted_gain();
  stats_.achieved_gain += report.achieved_gain;
  return report.applied;
}

void Reoptimizer::loop(const std::stop_token& token) {
  Mutex sleep_mutex;
  CondVar wakeup;
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.interval_ms);
  while (!token.stop_requested()) {
    {
      const MutexLock sleep_lock(&sleep_mutex);
      wakeup.wait_for(sleep_mutex, token, interval, [] { return false; });
    }
    if (token.stop_requested()) break;
    // try_lock only: the serving path always wins, and a stop() issued by
    // a thread holding the cluster mutex can never deadlock against us.
    const TryLock cluster_lock(cluster_mutex_);
    if (!cluster_lock) continue;
    pass_locked();
  }
}

ReoptStats Reoptimizer::stats() const {
  const MutexLock stats_lock(&stats_mutex_);
  return stats_;
}

void Reoptimizer::check_invariants() const {
  const ReoptStats snapshot = stats();
  TACC_CHECK_INVARIANT(
      snapshot.moves_proposed ==
          snapshot.moves_applied + snapshot.rejected(),
      "reopt ledger: proposals must be partitioned by outcomes");
  TACC_CHECK_INVARIANT(snapshot.plans <= snapshot.passes,
                       "reopt ledger: more plans than passes");
}

}  // namespace tacc::opt
