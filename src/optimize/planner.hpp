// Bounded local-search move proposal against a live DynamicCluster.
//
// propose_plan() is the read-only half of the background re-optimizer: it
// scans a bounded slice of the device population, scores candidate
// device-reassignment and pairwise-swap moves with the cluster's shared
// CostModel (DynamicCluster::placement_cost — the same scoring the greedy
// join/move paths and the portfolio solvers' gap::Instance::cost use), and
// emits a MovePlan for DynamicCluster::apply_move_plan() to validate and
// apply under the cluster lock.
//
// Incrementality: the planner rides the IncrementalDelayEngine. Device
// delay rows carry the engine epoch they were last rewritten at
// (DynamicCluster::delay_row_epoch); rows dirtied since the planner's last
// pass — i.e. devices whose delays actually moved under link churn — are
// scanned first, and the remainder of the scan budget round-robins through
// the rest of the population across passes. Move evaluation itself is O(1)
// per candidate server: a cached-row read, never a Dijkstra.
//
// The planner only READS the cluster. All mutation goes through
// apply_move_plan() (lint rule R6 bans direct mutator calls from this
// directory).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/dynamic.hpp"
#include "core/move_plan.hpp"
#include "util/rng.hpp"

namespace tacc::opt {

/// Per-pass effort bounds. Costs are cost-model units (weight × ms).
struct PlannerOptions {
  std::size_t scan_limit = 256;     ///< devices examined per pass
  std::size_t swap_limit = 32;      ///< swap pairs sampled per pass
  /// Blocked-improvement eviction chains attempted per pass: when a
  /// device's cheaper server lacks headroom, relocate one of its residents
  /// first (two moves, net gain required). The escape hatch for
  /// capacity-tight regimes where no single move or feasible swap exists.
  std::size_t chain_limit = 8;
  std::size_t max_plan_moves = 16;  ///< plan size cap (budget headroom)
  double min_gain = 1e-6;           ///< ignore improvements below this
};

/// Cross-pass planner memory: the round-robin scan cursor, the engine epoch
/// up to which rows have been considered (dirty-row prioritization), and
/// the deterministic swap-sampling stream.
struct PlannerState {
  explicit PlannerState(std::uint64_t seed = 0x0500B1ull) : rng(seed) {}
  std::size_t cursor = 0;
  std::uint64_t seen_epoch = 0;
  util::Rng rng;
};

/// One bounded proposal pass. Never mutates the cluster; the caller must
/// hold whatever lock makes concurrent cluster mutation impossible for the
/// duration of the call (reads are not internally synchronized).
[[nodiscard]] MovePlan propose_plan(const DynamicCluster& cluster,
                                    const PlannerOptions& options,
                                    PlannerState& state);

}  // namespace tacc::opt
