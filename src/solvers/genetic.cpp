#include "solvers/genetic.hpp"

#include <algorithm>
#include <limits>

#include "solvers/constructive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kEps = 1e-9;

struct Individual {
  gap::Assignment genes;
  double fitness = std::numeric_limits<double>::infinity();  // lower = better
  double cost = 0.0;
  double overload = 0.0;
};

void score(const gap::Instance& instance, double penalty, Individual& ind) {
  const std::size_t m = instance.server_count();
  std::vector<double> loads(m, 0.0);
  ind.cost = 0.0;
  for (gap::DeviceIndex i = 0; i < ind.genes.size(); ++i) {
    const auto j = static_cast<gap::ServerIndex>(ind.genes[i]);
    loads[j] += instance.demand(i, j);
    ind.cost += instance.cost(i, j);
  }
  ind.overload = 0.0;
  for (gap::ServerIndex j = 0; j < m; ++j) {
    ind.overload += std::max(0.0, loads[j] - instance.capacity(j));
  }
  ind.fitness = ind.cost + penalty * ind.overload;
}

/// Greedy repair: move devices off overloaded servers at minimum cost.
void repair(const gap::Instance& instance, gap::Assignment& genes) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  std::vector<double> loads(m, 0.0);
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    loads[static_cast<gap::ServerIndex>(genes[i])] +=
        instance.demand(i, static_cast<gap::ServerIndex>(genes[i]));
  }
  for (gap::ServerIndex j = 0; j < m; ++j) {
    while (loads[j] > instance.capacity(j) + kEps) {
      gap::DeviceIndex victim = n;
      gap::ServerIndex target = m;
      double best_delta = std::numeric_limits<double>::infinity();
      for (gap::DeviceIndex i = 0; i < n; ++i) {
        if (static_cast<gap::ServerIndex>(genes[i]) != j) continue;
        for (gap::ServerIndex t = 0; t < m; ++t) {
          if (t == j) continue;
          if (loads[t] + instance.demand(i, t) >
              instance.capacity(t) + kEps) {
            continue;
          }
          const double delta = instance.cost(i, t) - instance.cost(i, j);
          if (delta < best_delta) {
            best_delta = delta;
            victim = i;
            target = t;
          }
        }
      }
      if (victim == n) return;  // nothing movable
      loads[j] -= instance.demand(victim, j);
      loads[target] += instance.demand(victim, target);
      genes[victim] = static_cast<std::int32_t>(target);
    }
  }
}

}  // namespace

SolveResult GeneticSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  util::Rng rng(options_.seed);
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  const std::size_t pop_size = std::max<std::size_t>(4, options_.population);
  const std::size_t mut_k =
      std::min(std::max<std::size_t>(1, options_.mutation_candidates), m);

  double penalty = options_.overload_penalty;
  if (penalty <= 0.0) {
    double max_cost = 0.0;
    for (gap::DeviceIndex i = 0; i < n; ++i) {
      for (gap::ServerIndex j = 0; j < m; ++j) {
        max_cost = std::max(max_cost, instance.cost(i, j));
      }
    }
    penalty = 4.0 * max_cost + 1.0;
  }

  // Seed the population: one greedy individual plus randomized ones biased
  // toward low-delay servers.
  std::vector<Individual> population(pop_size);
  {
    GreedyBestFitSolver greedy;
    population[0].genes = greedy.solve(instance).assignment;
    for (std::size_t p = 1; p < pop_size; ++p) {
      population[p].genes.resize(n);
      for (gap::DeviceIndex i = 0; i < n; ++i) {
        const auto ranked = instance.servers_by_delay(i);
        population[p].genes[i] = static_cast<std::int32_t>(
            ranked[rng.index(std::min<std::size_t>(mut_k * 2, m))]);
      }
    }
    for (auto& ind : population) score(instance, penalty, ind);
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = &population[rng.index(pop_size)];
    for (std::size_t t = 1; t < options_.tournament; ++t) {
      const Individual& challenger = population[rng.index(pop_size)];
      if (challenger.fitness < winner->fitness) winner = &challenger;
    }
    return *winner;
  };

  std::size_t evaluations = pop_size;
  for (std::size_t gen = 0; gen < options_.generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    std::vector<Individual> next;
    next.reserve(pop_size);
    for (std::size_t e = 0; e < std::min(options_.elite, pop_size); ++e) {
      next.push_back(population[e]);
    }
    while (next.size() < pop_size) {
      Individual child;
      const Individual& mother = tournament_pick();
      if (rng.bernoulli(options_.crossover_rate)) {
        const Individual& father = tournament_pick();
        child.genes.resize(n);
        for (gap::DeviceIndex i = 0; i < n; ++i) {
          child.genes[i] =
              rng.bernoulli(0.5) ? mother.genes[i] : father.genes[i];
        }
      } else {
        child.genes = mother.genes;
      }
      for (gap::DeviceIndex i = 0; i < n; ++i) {
        if (rng.bernoulli(options_.mutation_rate)) {
          const auto ranked = instance.servers_by_delay(i);
          child.genes[i] =
              static_cast<std::int32_t>(ranked[rng.index(mut_k)]);
        }
      }
      score(instance, penalty, child);
      ++evaluations;
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) {
        return a.fitness < b.fitness;
      });
  gap::Assignment winner = std::move(best_it->genes);
  repair(instance, winner);
  return detail::finish(instance, std::move(winner), timer.elapsed_ms(),
                        evaluations);
}

}  // namespace tacc::solvers
