// One-pass constructive solvers: the baseline ladder.
//
//   Random          — uniform random server per device (sanity floor)
//   RoundRobin      — devices dealt to servers cyclically (load-only)
//   GreedyNearest   — min-cost server per device, capacity-OBLIVIOUS: the
//                     classic "connect to the nearest edge" policy that the
//                     paper's overload constraint exists to rule out
//   GreedyBestFit   — devices by descending demand, each to the cheapest
//                     server that still fits (best-fit-decreasing flavor)
//   RegretGreedy    — Martello–Toth style: repeatedly commit the device with
//                     the largest regret (2nd-cheapest feasible minus
//                     cheapest feasible), the strongest classical heuristic
#pragma once

#include "solvers/solver.hpp"
#include "util/rng.hpp"

namespace tacc::solvers {

class RandomSolver final : public Solver {
 public:
  explicit RandomSolver(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  util::Rng rng_;
};

class RoundRobinSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;
};

class GreedyNearestSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "greedy-nearest";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;
};

class GreedyBestFitSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "greedy-bestfit";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;
};

class RegretGreedySolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "regret-greedy";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;
};

}  // namespace tacc::solvers
