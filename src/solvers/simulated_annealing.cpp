#include "solvers/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>

#include "solvers/constructive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {

[[nodiscard]] double overload(double load, double capacity) noexcept {
  return std::max(0.0, load - capacity);
}

}  // namespace

SolveResult SimulatedAnnealingSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  util::Rng rng(options_.seed);
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();

  // Seed with best-fit so the walk starts near feasibility.
  GreedyBestFitSolver seed_solver;
  gap::Assignment assignment = seed_solver.solve(instance).assignment;

  std::vector<double> loads(m, 0.0);
  double cost = 0.0;
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    const auto j = static_cast<gap::ServerIndex>(assignment[i]);
    loads[j] += instance.demand(i, j);
    cost += instance.cost(i, j);
  }

  double penalty = options_.overload_penalty;
  if (penalty <= 0.0) {
    double max_cost = 0.0;
    for (gap::DeviceIndex i = 0; i < n; ++i) {
      for (gap::ServerIndex j = 0; j < m; ++j) {
        max_cost = std::max(max_cost, instance.cost(i, j));
      }
    }
    penalty = 4.0 * max_cost + 1.0;
  }

  double temperature = options_.initial_temperature;
  if (temperature <= 0.0) {
    temperature = std::max(1e-6, 0.1 * cost / static_cast<double>(n));
  }

  gap::Assignment best = assignment;
  double best_cost = cost;
  bool best_feasible = gap::is_feasible(instance, assignment);
  if (!best_feasible) best_cost = std::numeric_limits<double>::infinity();

  const auto total_overload = [&] {
    double sum = 0.0;
    for (gap::ServerIndex j = 0; j < m; ++j) {
      sum += overload(loads[j], instance.capacity(j));
    }
    return sum;
  };
  double overload_now = total_overload();

  std::size_t steps_done = 0;
  for (std::size_t step = 0; step < options_.steps; ++step) {
    ++steps_done;
    const bool do_swap = m > 1 && rng.bernoulli(options_.swap_probability);
    if (do_swap) {
      const gap::DeviceIndex a = rng.index(n);
      const gap::DeviceIndex b = rng.index(n);
      const auto ja = static_cast<gap::ServerIndex>(assignment[a]);
      const auto jb = static_cast<gap::ServerIndex>(assignment[b]);
      if (a == b || ja == jb) continue;
      const double cost_delta = instance.cost(a, jb) + instance.cost(b, ja) -
                                instance.cost(a, ja) - instance.cost(b, jb);
      const double la = loads[ja] - instance.demand(a, ja) +
                        instance.demand(b, ja);
      const double lb = loads[jb] - instance.demand(b, jb) +
                        instance.demand(a, jb);
      const double overload_delta =
          overload(la, instance.capacity(ja)) +
          overload(lb, instance.capacity(jb)) -
          overload(loads[ja], instance.capacity(ja)) -
          overload(loads[jb], instance.capacity(jb));
      const double energy_delta = cost_delta + penalty * overload_delta;
      if (energy_delta <= 0.0 ||
          rng.uniform() < std::exp(-energy_delta / temperature)) {
        loads[ja] = la;
        loads[jb] = lb;
        assignment[a] = static_cast<std::int32_t>(jb);
        assignment[b] = static_cast<std::int32_t>(ja);
        cost += cost_delta;
        overload_now += overload_delta;
      }
    } else {
      const gap::DeviceIndex i = rng.index(n);
      const gap::ServerIndex j = rng.index(m);
      const auto from = static_cast<gap::ServerIndex>(assignment[i]);
      if (j == from) continue;
      const double cost_delta = instance.cost(i, j) - instance.cost(i, from);
      const double lf = loads[from] - instance.demand(i, from);
      const double lt = loads[j] + instance.demand(i, j);
      const double overload_delta =
          overload(lf, instance.capacity(from)) +
          overload(lt, instance.capacity(j)) -
          overload(loads[from], instance.capacity(from)) -
          overload(loads[j], instance.capacity(j));
      const double energy_delta = cost_delta + penalty * overload_delta;
      if (energy_delta <= 0.0 ||
          rng.uniform() < std::exp(-energy_delta / temperature)) {
        loads[from] = lf;
        loads[j] = lt;
        assignment[i] = static_cast<std::int32_t>(j);
        cost += cost_delta;
        overload_now += overload_delta;
      }
    }

    if (overload_now <= 1e-9 && cost < best_cost) {
      best = assignment;
      best_cost = cost;
      best_feasible = true;
    }
    temperature *= options_.cooling;
  }

  if (!best_feasible) best = assignment;  // never saw feasibility: report walk end
  return detail::finish(instance, std::move(best), timer.elapsed_ms(),
                        steps_done);
}

}  // namespace tacc::solvers
