#include "solvers/bottleneck.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "flow/min_cost_flow.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kEps = 1e-9;

/// Splittable feasibility with only delay-≤-threshold arcs admitted.
[[nodiscard]] bool splittable_feasible(const gap::Instance& instance,
                                       double threshold) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  flow::MinCostFlow network(n + m + 2);
  const auto source = static_cast<std::uint32_t>(n + m);
  const auto sink = static_cast<std::uint32_t>(n + m + 1);
  double total_demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double demand = instance.demand(i, 0);
    total_demand += demand;
    network.add_arc(source, static_cast<std::uint32_t>(i), demand, 0.0);
    bool any_arc = false;
    for (std::size_t j = 0; j < m; ++j) {
      if (instance.delay_ms(i, j) <= threshold + kEps) {
        network.add_arc(static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(n + j), demand, 0.0);
        any_arc = true;
      }
    }
    if (!any_arc) return false;  // device has no server within threshold
  }
  for (std::size_t j = 0; j < m; ++j) {
    network.add_arc(static_cast<std::uint32_t>(n + j), sink,
                    instance.capacity(j), 0.0);
  }
  return network.solve(source, sink, total_demand).reached_target;
}

/// Integral construction under a threshold: cheapest ≤-T server that still
/// fits, devices in descending demand, then eviction repair confined to
/// ≤-T arcs. Returns empty assignment on failure.
[[nodiscard]] gap::Assignment integral_under_threshold(
    const gap::Instance& instance, double threshold) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  std::vector<gap::DeviceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](gap::DeviceIndex a, gap::DeviceIndex b) {
              const double da = instance.demand(a, 0);
              const double db = instance.demand(b, 0);
              return da != db ? da > db : a < b;
            });

  gap::Assignment assignment(n, gap::kUnassigned);
  std::vector<double> loads(m, 0.0);
  for (gap::DeviceIndex i : order) {
    gap::ServerIndex best = m;
    double best_cost = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < m; ++j) {
      if (instance.delay_ms(i, j) > threshold + kEps) continue;
      if (loads[j] + instance.demand(i, j) > instance.capacity(j) + kEps) {
        continue;
      }
      if (instance.cost(i, j) < best_cost) {
        best_cost = instance.cost(i, j);
        best = j;
      }
    }
    if (best == m) {
      // Eviction repair: find any ≤-T server j whose some resident can move
      // to another ≤-T server (for the resident), freeing room for i.
      for (gap::ServerIndex j = 0; j < m && best == m; ++j) {
        if (instance.delay_ms(i, j) > threshold + kEps) continue;
        for (gap::DeviceIndex r = 0; r < n && best == m; ++r) {
          if (assignment[r] == gap::kUnassigned ||
              static_cast<gap::ServerIndex>(assignment[r]) != j) {
            continue;
          }
          for (gap::ServerIndex k = 0; k < m; ++k) {
            if (k == j || instance.delay_ms(r, k) > threshold + kEps) {
              continue;
            }
            if (loads[k] + instance.demand(r, k) >
                instance.capacity(k) + kEps) {
              continue;
            }
            const double freed = loads[j] - instance.demand(r, j);
            if (freed + instance.demand(i, j) <=
                instance.capacity(j) + kEps) {
              // Move r to k, place i on j.
              loads[j] = freed;
              loads[k] += instance.demand(r, k);
              assignment[r] = static_cast<std::int32_t>(k);
              best = j;
              break;
            }
          }
        }
      }
      if (best == m) return {};  // give up at this threshold
    }
    assignment[i] = static_cast<std::int32_t>(best);
    loads[best] += instance.demand(i, best);
  }
  return assignment;
}

}  // namespace

BottleneckResult solve_bottleneck(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();

  // Candidate thresholds: the distinct delay values.
  std::vector<double> thresholds;
  thresholds.reserve(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      thresholds.push_back(instance.delay_ms(i, j));
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  BottleneckResult result;
  if (!instance.uniform_demand()) {
    // General demand matrices lack the splittable relaxation; fall back to
    // the largest threshold (plain best-fit) — documented limitation.
    gap::Assignment assignment =
        integral_under_threshold(instance, thresholds.back());
    result.lower_bound_ms = thresholds.front();
    result.solve_result = detail::finish(instance, std::move(assignment),
                                         timer.elapsed_ms(), 1);
    result.max_delay_ms =
        gap::evaluate(instance, result.solve_result.assignment).max_delay_ms;
    return result;
  }

  // Binary search the splittable-feasibility frontier.
  std::size_t lo = 0;
  std::size_t hi = thresholds.size() - 1;
  if (!splittable_feasible(instance, thresholds[hi])) {
    // Even unrestricted the instance is (splittably) infeasible; return the
    // best-effort greedy at max threshold.
    gap::Assignment assignment =
        integral_under_threshold(instance, thresholds[hi]);
    if (assignment.empty()) {
      assignment.assign(n, 0);
    }
    result.lower_bound_ms = thresholds[hi];
    result.solve_result = detail::finish(instance, std::move(assignment),
                                         timer.elapsed_ms(), 1);
    result.max_delay_ms =
        gap::evaluate(instance, result.solve_result.assignment).max_delay_ms;
    return result;
  }
  std::size_t probes = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++probes;
    if (splittable_feasible(instance, thresholds[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.lower_bound_ms = thresholds[lo];

  // Integral construction from T* upward.
  for (std::size_t t = lo; t < thresholds.size(); ++t) {
    gap::Assignment assignment =
        integral_under_threshold(instance, thresholds[t]);
    ++probes;
    if (!assignment.empty()) {
      result.solve_result = detail::finish(instance, std::move(assignment),
                                           timer.elapsed_ms(), probes);
      result.max_delay_ms =
          gap::evaluate(instance, result.solve_result.assignment)
              .max_delay_ms;
      return result;
    }
  }
  // Unreachable in practice (the full threshold admits everything the
  // greedy fallback needs), but stay total:
  gap::Assignment fallback(n, 0);
  result.solve_result = detail::finish(instance, std::move(fallback),
                                       timer.elapsed_ms(), probes);
  result.max_delay_ms =
      gap::evaluate(instance, result.solve_result.assignment).max_delay_ms;
  return result;
}

}  // namespace tacc::solvers
