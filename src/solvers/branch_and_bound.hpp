// Exact branch-and-bound for small instances.
//
// Depth-first over devices (largest demand first), servers tried in cost
// order, pruned by an admissible bound: committed cost + Σ over remaining
// devices of their global minimum cost. Exponential worst case — intended
// for the T1 optimality-gap experiment (n ≲ 20) and for solver tests.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct BranchAndBoundOptions {
  /// Search-node budget; when exhausted the best incumbent is returned with
  /// proven_optimal = false. 0 means unlimited.
  std::size_t max_nodes = 20'000'000;
};

class BranchAndBoundSolver final : public Solver {
 public:
  explicit BranchAndBoundSolver(BranchAndBoundOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "branch-and-bound";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  BranchAndBoundOptions options_;
};

}  // namespace tacc::solvers
