// Common solver interface for the TACC/GAP problem.
//
// Every solver returns a *complete* assignment. Capacity-aware solvers fall
// back to the least-utilized server when no feasible choice exists (and the
// result is then marked infeasible) — experiments need the realized delay of
// every algorithm even where it fails the constraint, because "how badly
// does the state of the art overload" is itself a reported metric (F3).
#pragma once

#include <memory>
#include <string_view>

#include "gap/instance.hpp"
#include "gap/solution.hpp"

namespace tacc::solvers {

struct SolveResult {
  gap::Assignment assignment;
  double total_cost = 0.0;  ///< Σ weight·delay of the returned assignment
  bool feasible = false;    ///< complete and within every capacity
  double wall_ms = 0.0;     ///< solver wall-clock time
  std::size_t iterations = 0;  ///< solver-specific effort counter
  bool proven_optimal = false; ///< only exact solvers ever set this
};

class Solver {
 public:
  virtual ~Solver() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual SolveResult solve(const gap::Instance& instance) = 0;
};

using SolverPtr = std::unique_ptr<Solver>;

namespace detail {
/// Finishes a SolveResult from an assignment: evaluates cost/feasibility.
[[nodiscard]] SolveResult finish(const gap::Instance& instance,
                                 gap::Assignment assignment, double wall_ms,
                                 std::size_t iterations);

/// The shared fallback: cheapest server that stays feasible, else the one
/// with the lowest post-assignment utilization.
[[nodiscard]] gap::ServerIndex best_feasible_or_least_loaded(
    const gap::Instance& instance, gap::DeviceIndex device,
    const std::vector<double>& loads);
}  // namespace detail

}  // namespace tacc::solvers
