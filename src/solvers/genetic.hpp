// Genetic algorithm over assignment chromosomes.
//
// Chromosome = the assignment vector itself. Fitness = cost plus a linear
// overload penalty, so selection pressure pushes the population toward
// feasibility without hard-rejecting informative infeasible parents.
// Tournament selection, uniform crossover, per-gene mutation to a random
// low-delay server, elitism, and a greedy repair pass on the final winner.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct GeneticOptions {
  std::uint64_t seed = 1;
  std::size_t population = 40;
  std::size_t generations = 120;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.02;    ///< per gene
  std::size_t elite = 2;          ///< copied unchanged each generation
  /// Mutated genes pick among this many lowest-delay servers.
  std::size_t mutation_candidates = 4;
  double overload_penalty = 0.0;  ///< 0 = auto (4 × max cost entry)
};

class GeneticSolver final : public Solver {
 public:
  explicit GeneticSolver(GeneticOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "genetic";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  GeneticOptions options_;
};

}  // namespace tacc::solvers
