#include "solvers/tabu.hpp"

#include <algorithm>
#include <limits>

#include "solvers/constructive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

SolveResult TabuSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  const std::size_t k = options_.candidate_servers == 0
                            ? m
                            : std::min(options_.candidate_servers, m);

  GreedyBestFitSolver seed_solver;
  gap::Assignment current = seed_solver.solve(instance).assignment;
  gap::IncrementalEvaluator eval(instance, current);

  gap::Assignment best = eval.assignment();
  double best_cost = eval.total_cost();
  const bool seed_feasible = gap::is_feasible(instance, best);

  // tabu_until[device][server]: iteration until which moving `device` back
  // to `server` is forbidden. Flat n×m array.
  std::vector<std::size_t> tabu_until(n * m, 0);
  std::size_t since_improvement = 0;
  std::size_t iterations_done = 0;

  for (std::size_t it = 1; it <= options_.iterations; ++it) {
    ++iterations_done;
    // Best admissible move in the (restricted) neighborhood.
    gap::DeviceIndex best_device = n;
    gap::ServerIndex best_target = m;
    double best_delta = std::numeric_limits<double>::infinity();
    for (gap::DeviceIndex i = 0; i < n; ++i) {
      const auto candidates = instance.servers_by_delay(i);
      for (std::size_t r = 0; r < k; ++r) {
        const gap::ServerIndex j = candidates[r];
        if (static_cast<std::int32_t>(j) == eval.assignment()[i]) continue;
        if (!eval.move_feasible(i, j)) continue;
        const double delta = eval.move_cost_delta(i, j);
        const bool tabu = tabu_until[i * m + j] >= it;
        // Aspiration: a tabu move is admissible if it beats the best.
        if (tabu && eval.total_cost() + delta >= best_cost) continue;
        if (delta < best_delta) {
          best_delta = delta;
          best_device = i;
          best_target = j;
        }
      }
    }
    if (best_device == n) break;  // neighborhood empty

    const auto from =
        static_cast<gap::ServerIndex>(eval.assignment()[best_device]);
    eval.apply_move(best_device, best_target);
    // Forbid moving this device straight back.
    tabu_until[best_device * m + from] = it + options_.tenure;

    if (eval.total_cost() < best_cost - 1e-12 &&
        (!seed_feasible || gap::is_feasible(instance, eval.assignment()))) {
      best_cost = eval.total_cost();
      best = eval.assignment();
      since_improvement = 0;
    } else if (++since_improvement >= options_.stall_limit) {
      break;
    }
  }
  return detail::finish(instance, std::move(best), timer.elapsed_ms(),
                        iterations_done);
}

}  // namespace tacc::solvers
