#include "solvers/constructive.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/timer.hpp"

namespace tacc::solvers {

SolveResult RandomSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  gap::Assignment assignment(instance.device_count(), gap::kUnassigned);
  for (auto& x : assignment) {
    x = static_cast<std::int32_t>(rng_.index(instance.server_count()));
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        instance.device_count());
}

SolveResult RoundRobinSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  gap::Assignment assignment(instance.device_count(), gap::kUnassigned);
  for (gap::DeviceIndex i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<std::int32_t>(i % instance.server_count());
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        instance.device_count());
}

SolveResult GreedyNearestSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  gap::Assignment assignment(instance.device_count(), gap::kUnassigned);
  for (gap::DeviceIndex i = 0; i < assignment.size(); ++i) {
    // servers_by_delay is delay-sorted; with uniform positive weights the
    // cheapest-cost server is also the lowest-delay one.
    gap::ServerIndex best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < instance.server_count(); ++j) {
      const double cost = instance.cost(i, j);
      if (cost < best_cost) {
        best_cost = cost;
        best = j;
      }
    }
    assignment[i] = static_cast<std::int32_t>(best);
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        instance.device_count());
}

SolveResult GreedyBestFitSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();
  std::vector<gap::DeviceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Big consumers first: placing them while slack is plentiful avoids the
  // end-game where only distant servers still fit them.
  std::sort(order.begin(), order.end(),
            [&](gap::DeviceIndex a, gap::DeviceIndex b) {
              const double da = instance.demand(a, 0);
              const double db = instance.demand(b, 0);
              return da != db ? da > db : a < b;
            });

  gap::Assignment assignment(n, gap::kUnassigned);
  std::vector<double> loads(instance.server_count(), 0.0);
  for (gap::DeviceIndex i : order) {
    const gap::ServerIndex j =
        detail::best_feasible_or_least_loaded(instance, i, loads);
    assignment[i] = static_cast<std::int32_t>(j);
    loads[j] += instance.demand(i, j);
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        n);
}

SolveResult RegretGreedySolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  constexpr double kEps = 1e-9;

  gap::Assignment assignment(n, gap::kUnassigned);
  std::vector<double> loads(m, 0.0);
  std::vector<bool> placed(n, false);
  std::size_t iterations = 0;

  for (std::size_t round = 0; round < n; ++round) {
    // Pick the unplaced device with the largest regret between its best and
    // second-best *currently feasible* servers.
    gap::DeviceIndex chosen = n;
    gap::ServerIndex chosen_server = m;
    double chosen_regret = -1.0;
    for (gap::DeviceIndex i = 0; i < n; ++i) {
      if (placed[i]) continue;
      ++iterations;
      double best = std::numeric_limits<double>::infinity();
      double second = std::numeric_limits<double>::infinity();
      gap::ServerIndex best_server = m;
      for (gap::ServerIndex j = 0; j < m; ++j) {
        if (loads[j] + instance.demand(i, j) >
            instance.capacity(j) + kEps) {
          continue;
        }
        const double cost = instance.cost(i, j);
        if (cost < best) {
          second = best;
          best = cost;
          best_server = j;
        } else if (cost < second) {
          second = cost;
        }
      }
      double regret;
      if (best_server == m) {
        // No feasible server at all: maximal urgency.
        regret = std::numeric_limits<double>::infinity();
      } else if (second == std::numeric_limits<double>::infinity()) {
        // Exactly one feasible server left: place before it fills up.
        regret = std::numeric_limits<double>::max();
      } else {
        regret = second - best;
      }
      if (regret > chosen_regret) {
        chosen_regret = regret;
        chosen = i;
        chosen_server = best_server;
      }
    }
    if (chosen == n) break;  // all placed
    if (chosen_server == m) {
      chosen_server =
          detail::best_feasible_or_least_loaded(instance, chosen, loads);
    }
    assignment[chosen] = static_cast<std::int32_t>(chosen_server);
    loads[chosen_server] += instance.demand(chosen, chosen_server);
    placed[chosen] = true;
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        iterations);
}

}  // namespace tacc::solvers
