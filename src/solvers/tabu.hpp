// Tabu search over the single-device move neighborhood.
//
// From a greedy seed, each iteration applies the best *feasible* move in the
// neighborhood even if it worsens the objective; reversing a recent move is
// forbidden for `tenure` iterations (the tabu list) unless it would beat the
// best solution seen (aspiration). Escapes the local optima that plain
// descent stops at.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct TabuOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 2000;
  std::size_t tenure = 20;  ///< how long a reversed move stays forbidden
  /// Evaluate only the `candidate_servers` lowest-delay targets per device
  /// (0 = all); keeps the neighborhood scan affordable on large instances.
  std::size_t candidate_servers = 8;
  /// Stop early after this many iterations without improving the best.
  std::size_t stall_limit = 400;
};

class TabuSolver final : public Solver {
 public:
  explicit TabuSolver(TabuOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "tabu";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  TabuOptions options_;
};

}  // namespace tacc::solvers
