// Bottleneck objective: minimize the MAXIMUM device delay subject to
// capacities (the worst-case-latency variant of TACC, natural under
// stringent per-device deadlines).
//
// Structure: binary-search the delay threshold T over the distinct entries
// of the delay matrix. For each T, admissibility of "every device on a
// server within T" is checked by a min-cost-flow feasibility run restricted
// to arcs with delay ≤ T (splittable feasibility — a valid relaxation, so
// the search returns a LOWER bound T*), then an integral assignment is
// constructed at the smallest threshold ≥ T* where best-fit + eviction
// repair succeeds. Total cost is tie-broken greedily among ≤-T servers.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct BottleneckResult {
  SolveResult solve_result;
  double max_delay_ms = 0.0;       ///< realized bottleneck
  double lower_bound_ms = 0.0;     ///< splittable-feasibility bound T*
};

/// Standalone entry point returning the bottleneck diagnostics.
[[nodiscard]] BottleneckResult solve_bottleneck(const gap::Instance& instance);

/// Solver-interface wrapper (drops the diagnostics).
class BottleneckSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bottleneck";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override {
    return solve_bottleneck(instance).solve_result;
  }
};

}  // namespace tacc::solvers
