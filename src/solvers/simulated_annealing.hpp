// Simulated annealing over the move/swap neighborhood.
//
// Metropolis acceptance on the cost objective with a geometric cooling
// schedule; infeasible states are admitted during the walk with a penalty
// proportional to total overload, so the chain can tunnel through capacity
// walls, but the best-so-far tracker only records feasible states (falling
// back to the final state if none was seen).
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct SimulatedAnnealingOptions {
  std::uint64_t seed = 1;
  std::size_t steps = 200'000;
  double initial_temperature = 0.0;  ///< 0 = auto (10% of seed cost / n)
  double cooling = 0.999'95;         ///< geometric factor per step
  double overload_penalty = 0.0;     ///< 0 = auto (max cost entry × 4)
  double swap_probability = 0.3;     ///< vs single-device move
};

class SimulatedAnnealingSolver final : public Solver {
 public:
  explicit SimulatedAnnealingSolver(SimulatedAnnealingOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "simulated-annealing";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  SimulatedAnnealingOptions options_;
};

}  // namespace tacc::solvers
