#include "solvers/grasp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kEps = 1e-9;

/// One randomized-greedy construction pass.
gap::Assignment construct(const gap::Instance& instance, std::size_t rcl_size,
                          util::Rng& rng) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  std::vector<gap::DeviceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  gap::Assignment assignment(n, gap::kUnassigned);
  std::vector<double> loads(m, 0.0);
  std::vector<gap::ServerIndex> rcl;
  for (gap::DeviceIndex i : order) {
    // Candidates in delay order; collect the cheapest feasible few.
    rcl.clear();
    for (std::uint32_t j : instance.servers_by_delay(i)) {
      if (loads[j] + instance.demand(i, j) <= instance.capacity(j) + kEps) {
        rcl.push_back(j);
        if (rcl.size() == rcl_size) break;
      }
    }
    gap::ServerIndex chosen;
    if (rcl.empty()) {
      chosen = detail::best_feasible_or_least_loaded(instance, i, loads);
    } else {
      chosen = rcl[rng.index(rcl.size())];
    }
    assignment[i] = static_cast<std::int32_t>(chosen);
    loads[chosen] += instance.demand(i, chosen);
  }
  return assignment;
}

}  // namespace

SolveResult GraspSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  util::Rng rng(options_.seed);

  gap::Assignment best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool best_feasible = false;
  std::size_t improvements = 0;

  for (std::size_t it = 0; it < std::max<std::size_t>(1, options_.iterations);
       ++it) {
    gap::Assignment candidate =
        construct(instance, std::max<std::size_t>(1, options_.rcl_size), rng);
    LocalSearchOptions ls = options_.local_search;
    ls.seed = options_.seed * 1000 + it;
    improvements += local_search_improve(instance, candidate, ls);

    const gap::Evaluation ev = gap::evaluate(instance, candidate);
    const bool better = (ev.feasible && !best_feasible) ||
                        (ev.feasible == best_feasible &&
                         ev.total_cost < best_cost);
    if (better) {
      best = std::move(candidate);
      best_cost = ev.total_cost;
      best_feasible = ev.feasible;
    }
  }
  return detail::finish(instance, std::move(best), timer.elapsed_ms(),
                        improvements);
}

}  // namespace tacc::solvers
