#include "solvers/flow_based.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "flow/min_cost_flow.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kEps = 1e-9;

struct FlowModel {
  flow::MinCostFlow network;
  std::vector<std::size_t> device_server_arcs;  // n×m arc ids, row-major
  std::uint32_t source;
  std::uint32_t sink;
  double total_demand;
};

/// Transportation network: source → device (demand), device → server
/// (cost/unit), server → sink (capacity). Requires uniform demand.
[[nodiscard]] FlowModel build_flow_model(const gap::Instance& instance) {
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  FlowModel model{flow::MinCostFlow(n + m + 2),
                  std::vector<std::size_t>(n * m),
                  static_cast<std::uint32_t>(n + m),
                  static_cast<std::uint32_t>(n + m + 1),
                  0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double demand = instance.demand(i, 0);
    model.total_demand += demand;
    model.network.add_arc(model.source, static_cast<std::uint32_t>(i),
                          demand, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      // Cost per unit of demand, so shipping the whole device costs
      // exactly cost(i,j).
      model.device_server_arcs[i * m + j] = model.network.add_arc(
          static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(n + j),
          demand, instance.cost(i, j) / demand);
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    model.network.add_arc(static_cast<std::uint32_t>(n + j), model.sink,
                          instance.capacity(j), 0.0);
  }
  return model;
}

}  // namespace

LowerBounds compute_lower_bounds(const gap::Instance& instance) {
  LowerBounds bounds;
  for (gap::DeviceIndex i = 0; i < instance.device_count(); ++i) {
    double lo = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < instance.server_count(); ++j) {
      lo = std::min(lo, instance.cost(i, j));
    }
    bounds.min_cost += lo;
  }
  bounds.splittable_flow = bounds.min_cost;

  if (!instance.uniform_demand()) return bounds;
  FlowModel model = build_flow_model(instance);
  const auto result =
      model.network.solve(model.source, model.sink, model.total_demand);
  if (result.reached_target) {
    bounds.splittable_flow = std::max(bounds.min_cost, result.cost);
    bounds.flow_bound_valid = true;
  }
  return bounds;
}

SolveResult FlowRelaxRepairSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();

  gap::Assignment assignment(n, gap::kUnassigned);
  std::size_t iterations = 0;

  if (instance.uniform_demand()) {
    FlowModel model = build_flow_model(instance);
    const auto flow_result =
        model.network.solve(model.source, model.sink, model.total_demand);
    iterations = static_cast<std::size_t>(flow_result.flow);
    // Round: each device to the server carrying most of its flow.
    for (std::size_t i = 0; i < n; ++i) {
      double best_flow = -1.0;
      gap::ServerIndex best = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const double f =
            model.network.flow_on(model.device_server_arcs[i * m + j]);
        if (f > best_flow) {
          best_flow = f;
          best = j;
        }
      }
      assignment[i] = static_cast<std::int32_t>(best);
    }
  } else {
    // General demand matrix: no transportation relaxation; start from the
    // per-device cheapest server and rely on the repair phase.
    for (gap::DeviceIndex i = 0; i < n; ++i) {
      gap::ServerIndex best = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (gap::ServerIndex j = 0; j < m; ++j) {
        if (instance.cost(i, j) < best_cost) {
          best_cost = instance.cost(i, j);
          best = j;
        }
      }
      assignment[i] = static_cast<std::int32_t>(best);
    }
  }

  // Repair: while a server is overloaded, evict the resident whose cheapest
  // feasible relocation costs least, and move it there.
  std::vector<double> loads(m, 0.0);
  for (gap::DeviceIndex i = 0; i < n; ++i) {
    const auto j = static_cast<gap::ServerIndex>(assignment[i]);
    loads[j] += instance.demand(i, j);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (gap::ServerIndex j = 0; j < m; ++j) {
      while (loads[j] > instance.capacity(j) + kEps) {
        gap::DeviceIndex victim = n;
        gap::ServerIndex target = m;
        double best_delta = std::numeric_limits<double>::infinity();
        for (gap::DeviceIndex i = 0; i < n; ++i) {
          if (static_cast<gap::ServerIndex>(assignment[i]) != j) continue;
          for (gap::ServerIndex k = 0; k < m; ++k) {
            if (k == j) continue;
            if (loads[k] + instance.demand(i, k) >
                instance.capacity(k) + kEps) {
              continue;
            }
            const double delta =
                instance.cost(i, k) - instance.cost(i, j);
            if (delta < best_delta) {
              best_delta = delta;
              victim = i;
              target = k;
            }
          }
        }
        if (victim == n) break;  // nothing movable: leave overloaded
        ++iterations;
        loads[j] -= instance.demand(victim, j);
        loads[target] += instance.demand(victim, target);
        assignment[victim] = static_cast<std::int32_t>(target);
        progress = true;
      }
    }
  }
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        iterations);
}

}  // namespace tacc::solvers
