#include "solvers/solver.hpp"

namespace tacc::solvers::detail {

SolveResult finish(const gap::Instance& instance, gap::Assignment assignment,
                   double wall_ms, std::size_t iterations) {
  SolveResult result;
  const gap::Evaluation ev = gap::evaluate(instance, assignment);
  result.assignment = std::move(assignment);
  result.total_cost = ev.total_cost;
  result.feasible = ev.feasible;
  result.wall_ms = wall_ms;
  result.iterations = iterations;
  return result;
}

gap::ServerIndex best_feasible_or_least_loaded(
    const gap::Instance& instance, gap::DeviceIndex device,
    const std::vector<double>& loads) {
  constexpr double kEps = 1e-9;
  gap::ServerIndex best_feasible = instance.server_count();
  double best_feasible_cost = 0.0;
  gap::ServerIndex least_loaded = 0;
  double least_utilization = std::numeric_limits<double>::infinity();

  for (gap::ServerIndex j = 0; j < instance.server_count(); ++j) {
    const double new_load = loads[j] + instance.demand(device, j);
    const double cost = instance.cost(device, j);
    if (new_load <= instance.capacity(j) + kEps) {
      if (best_feasible == instance.server_count() ||
          cost < best_feasible_cost) {
        best_feasible = j;
        best_feasible_cost = cost;
      }
    }
    const double utilization = new_load / instance.capacity(j);
    if (utilization < least_utilization) {
      least_utilization = utilization;
      least_loaded = j;
    }
  }
  return best_feasible != instance.server_count() ? best_feasible
                                                  : least_loaded;
}

}  // namespace tacc::solvers::detail
