#include "solvers/local_search.hpp"

#include <algorithm>
#include <numeric>

#include "solvers/constructive.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kImproveEps = 1e-12;
}

std::size_t local_search_improve(const gap::Instance& instance,
                                 gap::Assignment& assignment,
                                 const LocalSearchOptions& options) {
  util::Rng rng(options.seed);
  gap::IncrementalEvaluator eval(instance, assignment);
  const std::size_t n = instance.device_count();
  const std::size_t m = instance.server_count();
  const std::size_t k =
      options.candidate_servers == 0
          ? m
          : std::min(options.candidate_servers, m);

  std::vector<gap::DeviceIndex> scan(n);
  std::iota(scan.begin(), scan.end(), 0);

  std::size_t improvements = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    rng.shuffle(scan);
    for (gap::DeviceIndex i : scan) {
      // Moves: device i to one of its k lowest-delay servers.
      const auto candidates = instance.servers_by_delay(i);
      for (std::size_t r = 0; r < k; ++r) {
        const gap::ServerIndex j = candidates[r];
        if (static_cast<std::int32_t>(j) == eval.assignment()[i]) continue;
        if (eval.move_cost_delta(i, j) < -kImproveEps &&
            eval.move_feasible(i, j)) {
          eval.apply_move(i, j);
          ++improvements;
          improved = true;
          if (options.max_improvements &&
              improvements >= options.max_improvements) {
            assignment = eval.assignment();
            return improvements;
          }
        }
      }
    }
    if (options.use_swaps) {
      // Swaps: scan random pairs — a full O(n²) pass is wasteful; sampling
      // n·log(n) pairs catches nearly all improving swaps in practice.
      const std::size_t samples = n * 4;
      for (std::size_t s = 0; s < samples; ++s) {
        const gap::DeviceIndex a = rng.index(n);
        const gap::DeviceIndex b = rng.index(n);
        if (a == b) continue;
        if (eval.swap_cost_delta(a, b) < -kImproveEps &&
            eval.swap_feasible(a, b)) {
          eval.apply_swap(a, b);
          ++improvements;
          improved = true;
          if (options.max_improvements &&
              improvements >= options.max_improvements) {
            assignment = eval.assignment();
            return improvements;
          }
        }
      }
    }
  }
  assignment = eval.assignment();
  return improvements;
}

SolveResult LocalSearchSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  GreedyBestFitSolver seed_solver;
  SolveResult seed = seed_solver.solve(instance);
  gap::Assignment assignment = std::move(seed.assignment);
  const std::size_t steps =
      local_search_improve(instance, assignment, options_);
  return detail::finish(instance, std::move(assignment), timer.elapsed_ms(),
                        steps);
}

}  // namespace tacc::solvers
