#include "solvers/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "solvers/constructive.hpp"
#include "util/timer.hpp"

namespace tacc::solvers {

namespace {
constexpr double kEps = 1e-9;

struct SearchState {
  const gap::Instance* instance;
  const std::vector<gap::DeviceIndex>* order;
  const std::vector<double>* suffix_min_cost;
  gap::Assignment assignment;
  std::vector<double> loads;
  double cost = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  gap::Assignment best_assignment;
  std::size_t nodes = 0;
  std::size_t max_nodes = 0;
  bool budget_exhausted = false;

  void dfs(std::size_t depth) {
    if (budget_exhausted) return;
    const gap::Instance& inst = *instance;
    if (depth == order->size()) {
      if (cost < best_cost - kEps) {
        best_cost = cost;
        best_assignment = assignment;
      }
      return;
    }
    if (cost + (*suffix_min_cost)[depth] >= best_cost - kEps) return;

    const gap::DeviceIndex device = (*order)[depth];
    // Try servers in increasing cost for this device.
    std::vector<gap::ServerIndex> servers(inst.server_count());
    std::iota(servers.begin(), servers.end(), 0);
    std::sort(servers.begin(), servers.end(),
              [&](gap::ServerIndex a, gap::ServerIndex b) {
                return inst.cost(device, a) < inst.cost(device, b);
              });
    for (gap::ServerIndex j : servers) {
      if (loads[j] + inst.demand(device, j) > inst.capacity(j) + kEps) {
        continue;
      }
      ++nodes;
      if (max_nodes && nodes > max_nodes) {
        budget_exhausted = true;
        return;
      }
      loads[j] += inst.demand(device, j);
      cost += inst.cost(device, j);
      assignment[device] = static_cast<std::int32_t>(j);
      dfs(depth + 1);
      assignment[device] = gap::kUnassigned;
      cost -= inst.cost(device, j);
      loads[j] -= inst.demand(device, j);
      if (budget_exhausted) return;
    }
  }
};

}  // namespace

SolveResult BranchAndBoundSolver::solve(const gap::Instance& instance) {
  util::WallTimer timer;
  const std::size_t n = instance.device_count();

  std::vector<gap::DeviceIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](gap::DeviceIndex a, gap::DeviceIndex b) {
              const double da = instance.demand(a, 0);
              const double db = instance.demand(b, 0);
              return da != db ? da > db : a < b;
            });

  // suffix_min_cost[d] = Σ_{k >= d} min_j cost(order[k], j): admissible
  // completion bound.
  std::vector<double> suffix_min_cost(n + 1, 0.0);
  for (std::size_t d = n; d-- > 0;) {
    double lo = std::numeric_limits<double>::infinity();
    for (gap::ServerIndex j = 0; j < instance.server_count(); ++j) {
      lo = std::min(lo, instance.cost(order[d], j));
    }
    suffix_min_cost[d] = suffix_min_cost[d + 1] + lo;
  }

  SearchState state;
  state.instance = &instance;
  state.order = &order;
  state.suffix_min_cost = &suffix_min_cost;
  state.assignment.assign(n, gap::kUnassigned);
  state.loads.assign(instance.server_count(), 0.0);
  state.max_nodes = options_.max_nodes;

  // Warm-start the incumbent with a quick heuristic so pruning bites early.
  {
    GreedyBestFitSolver greedy;
    const SolveResult warm = greedy.solve(instance);
    if (warm.feasible) {
      state.best_cost = warm.total_cost;
      state.best_assignment = warm.assignment;
    }
  }

  state.dfs(0);

  SolveResult result;
  if (state.best_assignment.empty()) {
    // No feasible solution found (possibly none exists): fall back so the
    // caller still gets a complete assignment, marked infeasible.
    GreedyBestFitSolver greedy;
    result = greedy.solve(instance);
    result.wall_ms = timer.elapsed_ms();
    result.iterations = state.nodes;
    result.proven_optimal = false;
    return result;
  }
  result = detail::finish(instance, std::move(state.best_assignment),
                          timer.elapsed_ms(), state.nodes);
  result.proven_optimal = !state.budget_exhausted;
  return result;
}

}  // namespace tacc::solvers
