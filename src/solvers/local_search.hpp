// Local search over move/swap neighborhoods, and its use as a polish pass.
//
// First-improvement descent with a randomized scan order: from a complete
// assignment, repeatedly apply a feasible cost-reducing single-device move
// or two-device swap until a local optimum or the iteration budget.
#pragma once

#include <optional>

#include "solvers/solver.hpp"
#include "util/rng.hpp"

namespace tacc::solvers {

struct LocalSearchOptions {
  std::uint64_t seed = 1;
  /// Upper bound on improving steps; 0 means "until local optimum".
  std::size_t max_improvements = 0;
  /// Enable the two-device swap neighborhood (needed to escape capacity
  /// deadlocks that single moves cannot fix).
  bool use_swaps = true;
  /// Restrict move targets to the K lowest-delay servers per device
  /// (0 = all servers). Large instances profit; quality loss is tiny.
  std::size_t candidate_servers = 0;
};

/// Improves `assignment` in place; returns number of improving steps.
/// The assignment must be complete; infeasible inputs are improved only
/// through moves that do not increase any server's overload.
std::size_t local_search_improve(const gap::Instance& instance,
                                 gap::Assignment& assignment,
                                 const LocalSearchOptions& options);

/// Solver wrapper: seeds with GreedyBestFit, then descends.
class LocalSearchSolver final : public Solver {
 public:
  explicit LocalSearchSolver(LocalSearchOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "local-search";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  LocalSearchOptions options_;
};

}  // namespace tacc::solvers
