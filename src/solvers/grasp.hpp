// GRASP — Greedy Randomized Adaptive Search Procedure.
//
// Multi-start: each iteration builds a solution with a *randomized* greedy
// (each device picks uniformly among the restricted candidate list of its
// cheapest feasible servers), then descends with local search; the best
// solution across iterations is returned. The classical strong multi-start
// baseline for GAP-type placement.
#pragma once

#include "solvers/local_search.hpp"
#include "solvers/solver.hpp"

namespace tacc::solvers {

struct GraspOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 24;
  /// Restricted-candidate-list size: each device chooses uniformly among
  /// its `rcl_size` cheapest currently-feasible servers.
  std::size_t rcl_size = 3;
  LocalSearchOptions local_search;
};

class GraspSolver final : public Solver {
 public:
  explicit GraspSolver(GraspOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "grasp";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  GraspOptions options_;
};

}  // namespace tacc::solvers
