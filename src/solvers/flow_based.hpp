// Flow-relaxation machinery: the splittable lower bound and the
// relax-and-repair baseline solver.
//
// Allowing each device to split its traffic across servers turns GAP (with
// per-device demands) into a transportation problem solvable exactly by
// min-cost flow. Its optimum lower-bounds the integral optimum, which is how
// we report optimality gaps at scales where branch-and-bound cannot run.
#pragma once

#include "solvers/solver.hpp"

namespace tacc::solvers {

struct LowerBounds {
  /// Σ_i min_j cost(i,j): ignores capacities entirely.
  double min_cost = 0.0;
  /// Splittable transportation optimum (≥ min_cost). Equals min_cost when
  /// the instance has a general demand matrix (relaxation needs uniform
  /// per-device demand) or the splittable problem is itself infeasible.
  double splittable_flow = 0.0;
  /// True when the splittable bound was actually computed by flow.
  bool flow_bound_valid = false;
};

[[nodiscard]] LowerBounds compute_lower_bounds(const gap::Instance& instance);

struct FlowRelaxRepairOptions {
  std::uint64_t seed = 1;
};

/// Solves the splittable relaxation, rounds each device to its largest
/// fractional server, then repairs capacity violations by cheapest-eviction
/// moves. A strong classical baseline (Shmoys–Tardos-flavored).
class FlowRelaxRepairSolver final : public Solver {
 public:
  explicit FlowRelaxRepairSolver(FlowRelaxRepairOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "flow-relax-repair";
  }
  [[nodiscard]] SolveResult solve(const gap::Instance& instance) override;

 private:
  FlowRelaxRepairOptions options_;
};

}  // namespace tacc::solvers
