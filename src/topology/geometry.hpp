// 2-D geometry for device placement and distance-based link models.
#pragma once

#include <cmath>

namespace tacc::topo {

struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point2D&, const Point2D&) = default;
};

[[nodiscard]] inline double euclidean_distance(const Point2D& a,
                                               const Point2D& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tacc::topo
