#include "topology/incremental/engine.hpp"

#include <algorithm>
#include <string>

#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace tacc::topo::incr {

IncrementalDelayEngine::IncrementalDelayEngine(NetworkTopology& net,
                                               std::size_t threads)
    : net_(&net), threads_(threads) {
  trees_.resize(net.edge_count());
  runtime::parallel_for(net.edge_count(), threads_, [&](std::size_t j) {
    trees_[j] = DynamicSsspTree(net.graph, net.edge_nodes[j]);
  });
  in_dirty_.assign(net.graph.node_count(), 0);
}

void IncrementalDelayEngine::sync_node_count() {
  const std::size_t n = net_->graph.node_count();
  if (n > in_dirty_.size()) in_dirty_.resize(n, 0);
  for (DynamicSsspTree& tree : trees_) tree.ensure_node_count(n);
}

void IncrementalDelayEngine::apply_to_trees(int kind, NodeId u, NodeId v,
                                            double old_ms, double new_ms) {
  sync_node_count();
  // A full recompute would settle every live node once per tree; the
  // difference against what the incremental repair actually touched is the
  // work saved — the number bench_m4_linkchurn's speedup gate measures.
  const std::uint64_t full_cost =
      static_cast<std::uint64_t>(trees_.size()) * net_->graph.live_node_count();
  std::uint64_t affected = 0;
  changed_scratch_.clear();
  for (DynamicSsspTree& tree : trees_) {
    SsspUpdateStats update;
    switch (kind) {
      case 0:
        update = tree.on_edge_added(net_->graph, u, v, new_ms,
                                    changed_scratch_);
        break;
      case 1:
        update = tree.on_edge_removed(net_->graph, u, v, changed_scratch_);
        break;
      default:
        update = tree.on_edge_latency_changed(net_->graph, u, v, old_ms,
                                              new_ms, changed_scratch_);
        break;
    }
    affected += update.nodes_affected;
  }
  for (const NodeId node : changed_scratch_) {
    if (in_dirty_[node] == 0) {
      in_dirty_[node] = 1;
      dirty_.push_back(node);
    }
  }
  ++stats_.epoch;
  stats_.nodes_affected += affected;
  stats_.nodes_saved += full_cost > affected ? full_cost - affected : 0;
  for (MutationListener* listener : listeners_) {
    listener->on_mutation(kind, u, v, old_ms, new_ms);
  }
}

void IncrementalDelayEngine::add_listener(MutationListener* listener) {
  if (listener != nullptr) listeners_.push_back(listener);
}

void IncrementalDelayEngine::remove_listener(
    MutationListener* listener) noexcept {
  std::erase(listeners_, listener);
}

EdgeProps IncrementalDelayEngine::fail_link(NodeId u, NodeId v) {
  const EdgeProps props = net_->fail_link(u, v);
  ++stats_.link_updates;
  apply_to_trees(1, u, v, props.latency_ms, kUnreachable);
  return props;
}

EdgeProps IncrementalDelayEngine::restore_link(NodeId u, NodeId v) {
  const EdgeProps props = net_->restore_link(u, v);
  ++stats_.link_updates;
  apply_to_trees(0, u, v, kUnreachable, props.latency_ms);
  return props;
}

EdgeProps IncrementalDelayEngine::set_link_latency(NodeId u, NodeId v,
                                                   double latency_ms) {
  const EdgeProps previous = net_->set_link_latency(u, v, latency_ms);
  ++stats_.link_updates;
  apply_to_trees(2, u, v, previous.latency_ms, latency_ms);
  return previous;
}

NodeId IncrementalDelayEngine::acquire_node(Point2D pos, NodeKind kind) {
  const NodeId node = net_->acquire_node(pos, kind);
  sync_node_count();
  return node;
}

void IncrementalDelayEngine::add_link(NodeId u, NodeId v, EdgeProps props) {
  net_->graph.add_edge(u, v, props);
  apply_to_trees(0, u, v, kUnreachable, props.latency_ms);
}

bool IncrementalDelayEngine::remove_link(NodeId u, NodeId v) {
  if (!net_->graph.remove_edge(u, v)) return false;
  apply_to_trees(1, u, v, kUnreachable, kUnreachable);
  return true;
}

void IncrementalDelayEngine::release_node(NodeId node) {
  // Peel the incident edges one at a time so each tree repair sees a graph
  // consistent with its input; the node ends isolated and release_node()
  // then only recycles the id.
  while (!net_->graph.neighbors(node).empty()) {
    const NodeId other = net_->graph.neighbors(node).front().to;
    remove_link(node, other);
  }
  net_->release_node(node);
}

std::size_t IncrementalDelayEngine::drain_dirty(std::vector<NodeId>& out) {
  const std::size_t count = dirty_.size();
  for (const NodeId node : dirty_) in_dirty_[node] = 0;
  out.insert(out.end(), dirty_.begin(), dirty_.end());
  dirty_.clear();
  return count;
}

void IncrementalDelayEngine::rebuild() {
  trees_.assign(net_->edge_count(), DynamicSsspTree());
  runtime::parallel_for(net_->edge_count(), threads_, [&](std::size_t j) {
    trees_[j] = DynamicSsspTree(net_->graph, net_->edge_nodes[j]);
  });
  sync_node_count();
  ++stats_.epoch;
  for (NodeId node = 0; node < net_->graph.node_count(); ++node) {
    if (in_dirty_[node] == 0) {
      in_dirty_[node] = 1;
      dirty_.push_back(node);
    }
  }
  for (MutationListener* listener : listeners_) listener->on_rebuild();
}

void IncrementalDelayEngine::check_invariants(
    std::size_t spot_check_trees) const {
  TACC_CHECK_INVARIANT(trees_.size() == net_->edge_count(),
                       "one tree per edge server");
  TACC_CHECK_INVARIANT(in_dirty_.size() >= net_->graph.node_count(),
                       "dirty bitmap must cover every node");

  // Dirty list and membership bitmap must describe the same set.
  std::size_t flagged = 0;
  for (const std::uint8_t flag : in_dirty_) flagged += flag != 0 ? 1 : 0;
  TACC_CHECK_INVARIANT(flagged == dirty_.size(),
                       "dirty list and bitmap disagree");
  for (const NodeId node : dirty_) {
    TACC_CHECK_INVARIANT(node < in_dirty_.size() && in_dirty_[node] != 0,
                         "dirty node not flagged in the bitmap");
  }

  for (std::size_t j = 0; j < trees_.size(); ++j) {
    TACC_CHECK_INVARIANT(trees_[j].source() == net_->edge_nodes[j],
                         "tree rooted at the wrong server node");
    TACC_CHECK_INVARIANT(trees_[j].node_count() >= net_->graph.node_count(),
                         "tree not grown to the graph's node count");
  }

  // Exactness spot-check vs from-scratch Dijkstra, rotated by epoch so
  // repeated calls (e.g. sampled bench epochs) sweep across servers.
  const std::size_t checks = std::min(spot_check_trees, trees_.size());
  for (std::size_t k = 0; k < checks; ++k) {
    const std::size_t j =
        (static_cast<std::size_t>(stats_.epoch) + k) % trees_.size();
    const ShortestPathTree reference =
        dijkstra(net_->graph, net_->edge_nodes[j]);
    for (NodeId node = 0; node < net_->graph.node_count(); ++node) {
      const double expected = reference.distance_ms[node];
      const double actual = trees_[j].distance_ms(node);
      // Bitwise agreement, except both-unreachable compares equal.
      TACC_CHECK_INVARIANT(
          actual == expected ||
              (actual == kUnreachable && expected == kUnreachable),
          "tree " + std::to_string(j) + " diverged from Dijkstra at node " +
              std::to_string(node));
    }
  }
}

std::size_t IncrementalDelayEngine::scratch_bytes() const noexcept {
  std::size_t bytes = dirty_.capacity() * sizeof(NodeId) +
                      in_dirty_.capacity() +
                      changed_scratch_.capacity() * sizeof(NodeId);
  for (const DynamicSsspTree& tree : trees_) bytes += tree.scratch_bytes();
  return bytes;
}

}  // namespace tacc::topo::incr
