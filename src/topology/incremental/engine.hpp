// IncrementalDelayEngine: keeps one DynamicSsspTree per edge server in sync
// with in-place mutations of a live NetworkTopology.
//
// The engine owns the mutation path: callers fail/restore/reweight backbone
// links and attach/detach device nodes through it, and it forwards each
// change to every server tree (cost O(affected region) per tree, not a full
// recompute). Nodes whose server distances changed accumulate in a dirty set
// that a downstream DelayMatrixCache drains to refresh exactly the rows that
// moved. Distances read from the trees are bit-identical to a from-scratch
// compute_delay_matrix() at every epoch (see dynamic_sssp.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/incremental/dynamic_sssp.hpp"
#include "topology/network.hpp"

namespace tacc::topo::incr {

/// Cumulative counters; `epoch` bumps on every distance-relevant mutation,
/// so equal epochs imply identical tree state.
struct EngineStats {
  std::uint64_t epoch = 0;
  std::uint64_t link_updates = 0;    ///< fail/restore/set_latency calls
  std::uint64_t nodes_affected = 0;  ///< Σ per-tree affected-region sizes
  std::uint64_t nodes_saved = 0;     ///< full-recompute node visits avoided
};

/// Observer for the engine's mutation funnel. Listeners are notified AFTER
/// the graph and every server tree reflect the mutation (the same contract
/// DynamicSsspTree's update hooks have with the graph), so a listener can
/// repair its own derived structures against the post-mutation graph.
/// `kind` matches apply_to_trees: 0 edge added, 1 removed, 2 reweighted.
/// Used by the landmark delay oracle to keep its landmark distance vectors
/// in sync with link churn (see topology/oracle/landmark.hpp).
class MutationListener {
 public:
  virtual ~MutationListener() = default;
  virtual void on_mutation(int kind, NodeId u, NodeId v, double old_ms,
                           double new_ms) = 0;
  /// The engine rebuilt every tree from scratch (recovery hatch).
  virtual void on_rebuild() = 0;
};

class IncrementalDelayEngine {
 public:
  /// Builds one shortest-path tree per edge server of `net` (`threads`
  /// spreads the initial Dijkstra runs; updates are serial). The engine
  /// keeps a pointer to `net` — it must outlive the engine and all
  /// mutations must go through the engine or be followed by rebuild().
  explicit IncrementalDelayEngine(NetworkTopology& net,
                                  std::size_t threads = 1);

  [[nodiscard]] const NetworkTopology& network() const noexcept {
    return *net_;
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return trees_.size();
  }
  /// Delay (ms) from edge server `server` (index into net.edge_nodes) to
  /// any graph node; kUnreachable if disconnected.
  [[nodiscard]] double delay_ms(std::size_t server, NodeId node) const {
    return trees_[server].distance_ms(node);
  }
  [[nodiscard]] const DynamicSsspTree& tree(std::size_t server) const {
    return trees_.at(server);
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return stats_.epoch; }

  // ---- Backbone link churn (the LINK_* wire verbs) -------------------------
  // Each delegates to the NetworkTopology mutator, then repairs every server
  // tree incrementally. Throws what the topology mutator throws; on throw
  // nothing has changed.
  EdgeProps fail_link(NodeId u, NodeId v);
  EdgeProps restore_link(NodeId u, NodeId v);
  EdgeProps set_link_latency(NodeId u, NodeId v, double latency_ms);

  // ---- Device churn (joins / moves / leaves) -------------------------------
  /// NetworkTopology::acquire_node + tree growth; the node starts isolated.
  NodeId acquire_node(Point2D pos, NodeKind kind);
  /// Graph::add_edge + incremental tree repair.
  void add_link(NodeId u, NodeId v, EdgeProps props);
  /// Graph::remove_edge + incremental tree repair. False if no such edge.
  bool remove_link(NodeId u, NodeId v);
  /// Removes every incident edge (repairing trees per edge), then returns
  /// the node to the topology's free list.
  void release_node(NodeId node);

  // ---- Dirty set -----------------------------------------------------------
  /// Nodes whose distance to some server changed since the last drain.
  [[nodiscard]] std::size_t dirty_count() const noexcept {
    return dirty_.size();
  }
  /// Appends the dirty nodes to `out`, clears the set, returns the count.
  std::size_t drain_dirty(std::vector<NodeId>& out);

  /// True iff `node` is currently in the dirty set (distance changed since
  /// the last drain). Used by DelayMatrixCache::check_invariants to prove
  /// stale rows are excused by dirtiness.
  [[nodiscard]] bool is_dirty(NodeId node) const noexcept {
    return node < in_dirty_.size() && in_dirty_[node] != 0;
  }

  /// Deep validation, reported through the contracts failure handler:
  ///  - one tree per edge server, rooted at that server's node, sized to
  ///    the graph;
  ///  - dirty-set bookkeeping (dirty list and membership bitmap agree);
  ///  - exactness spot-check: up to `spot_check_trees` trees (rotated by
  ///    epoch so successive calls cover different servers) are compared
  ///    bit-for-bit against a from-scratch Dijkstra on the live graph —
  ///    the Ramalingam–Reps-style repair must be indistinguishable from a
  ///    full recompute.
  /// Cold path (each spot check is one Dijkstra); for tests and sampled
  /// bench epochs.
  void check_invariants(std::size_t spot_check_trees = 1) const;

  /// From-scratch reconstruction of every tree (and dirties every node).
  /// Recovery hatch for out-of-band topology edits; also used by tests.
  void rebuild();

  /// Scratch bytes across all trees plus the dirty set — the bench's
  /// flat-memory gate watches this across 100k+ events.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept;

  // ---- Mutation listeners --------------------------------------------------
  /// Registers `listener` for post-mutation notifications (not owned; must
  /// outlive its registration — remove_listener() before destruction).
  void add_listener(MutationListener* listener);
  void remove_listener(MutationListener* listener) noexcept;

 private:
  /// Grows per-tree arrays and the dirty bitmap to the graph's node count.
  void sync_node_count();
  /// Applies one already-performed graph mutation to every tree and folds
  /// the changed nodes into the dirty set. kind: 0 added, 1 removed,
  /// 2 reweighted.
  void apply_to_trees(int kind, NodeId u, NodeId v, double old_ms,
                      double new_ms);

  NetworkTopology* net_;
  std::size_t threads_;
  std::vector<DynamicSsspTree> trees_;  ///< trees_[j] rooted at edge_nodes[j]
  EngineStats stats_;

  std::vector<NodeId> dirty_;
  std::vector<std::uint8_t> in_dirty_;  ///< per node: already in dirty_?
  std::vector<NodeId> changed_scratch_;
  std::vector<MutationListener*> listeners_;
};

}  // namespace tacc::topo::incr
