// Dynamic single-source shortest paths over the latency metric.
//
// A DynamicSsspTree maintains the distance and parent of every node from one
// source across edge insertions, deletions, and reweightings, touching only
// the affected region instead of re-running Dijkstra from scratch:
//
//  - insert / latency decrease: if the edge improves one endpoint, a bounded
//    Dijkstra from that endpoint pushes the improvement outward and stops at
//    the first unimproved frontier.
//  - delete / latency increase: if the edge is not a tree edge, nothing can
//    change. If it is, the subtree hanging below it ("orphans") is collected
//    by following parent pointers (O(Σ deg(orphan)) — no child lists), its
//    distances are invalidated, and a Dijkstra restricted to the orphan set
//    re-relaxes from the surviving frontier. Non-orphan distances are
//    provably unchanged, so the cost is O(affected · (deg + log)).
//
// Exactness: distances are the min-plus closure of the rounded edge weights
// (the same value Dijkstra computes), so an incrementally maintained tree is
// bit-identical to a from-scratch dijkstra() at every step — the randomized
// churn tests and bench_m4_linkchurn gate on exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/shortest_paths.hpp"

namespace tacc::topo::incr {

/// What one update touched. `nodes_affected` counts nodes examined for
/// change (orphaned or improved); `changed` lists the nodes whose DISTANCE
/// actually changed — the dirty set downstream caches must rewrite.
struct SsspUpdateStats {
  std::size_t nodes_affected = 0;
  std::size_t nodes_changed = 0;
};

class DynamicSsspTree {
 public:
  DynamicSsspTree() = default;
  /// Initializes from a full Dijkstra run.
  DynamicSsspTree(const Graph& graph, NodeId source);

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return dist_.size();
  }
  [[nodiscard]] double distance_ms(NodeId node) const {
    return dist_.at(node);
  }
  [[nodiscard]] const std::vector<double>& distances() const noexcept {
    return dist_;
  }
  [[nodiscard]] const std::vector<NodeId>& parents() const noexcept {
    return parent_;
  }

  /// Grows internal arrays to cover `count` nodes (new nodes unreachable).
  /// Call after the graph acquires nodes beyond the initial count.
  void ensure_node_count(std::size_t count);

  // Update hooks. The graph must ALREADY reflect the mutation (edge present
  // for added, absent for removed, new weight for changed). Nodes whose
  // distance changed are appended to `changed` (each node once).
  SsspUpdateStats on_edge_added(const Graph& graph, NodeId u, NodeId v,
                                double latency_ms,
                                std::vector<NodeId>& changed);
  SsspUpdateStats on_edge_removed(const Graph& graph, NodeId u, NodeId v,
                                  std::vector<NodeId>& changed);
  SsspUpdateStats on_edge_latency_changed(const Graph& graph, NodeId u,
                                          NodeId v, double old_latency_ms,
                                          double new_latency_ms,
                                          std::vector<NodeId>& changed);

  /// Bytes held by the scratch buffers (orphan list, heap, marks) — the
  /// bench's flat-memory gate checks this stays O(V), independent of how
  /// many updates have been applied.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept;

 private:
  struct HeapEntry {
    double dist;
    NodeId node;
    [[nodiscard]] bool operator<(const HeapEntry& other) const noexcept {
      return dist > other.dist;  // min-heap via std::push_heap
    }
  };

  /// Advances the scratch epochs (resetting the arrays on wraparound).
  void bump_epochs();
  /// Records the improved distance/parent, pushes the node, and appends it
  /// to `changed` the first time its distance moves this update.
  void improve(NodeId node, double dist, NodeId via,
               std::vector<NodeId>* changed);
  /// Bounded Dijkstra over the pre-seeded heap_: pops until empty, relaxing
  /// into orphans only (marked) or all nodes. Returns settled-node count.
  std::size_t run_heap(const Graph& graph, bool orphan_only,
                       std::vector<NodeId>* changed);
  /// Delete/increase repair: collect the subtree below `child`, invalidate
  /// it, re-seed from the surviving frontier, settle within the orphan set.
  SsspUpdateStats repair_orphans(const Graph& graph, NodeId child,
                                 std::vector<NodeId>& changed);
  [[nodiscard]] bool marked(NodeId node) const noexcept {
    return mark_[node] == mark_epoch_;
  }

  NodeId source_ = kInvalidNode;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;

  // Scratch, reused across updates (epoch-marked so no O(V) clears).
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> mark_;   ///< orphan membership
  std::vector<std::uint32_t> cmark_;  ///< already appended to `changed`
  std::uint32_t mark_epoch_ = 0;
  std::uint32_t cmark_epoch_ = 0;
  std::vector<NodeId> orphans_;
  std::vector<double> old_dist_;  // parallel to orphans_
};

}  // namespace tacc::topo::incr
