#include "topology/incremental/cache.hpp"

#include <bit>
#include <string>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc::topo::incr {

DelayMatrixCache::DelayMatrixCache(IncrementalDelayEngine& engine)
    : engine_(&engine) {}

void DelayMatrixCache::fill_row(std::size_t row) {
  const NodeId node = nodes_[row];
  auto& values = rows_[row];
  values.resize(engine_->server_count());
  for (std::size_t j = 0; j < values.size(); ++j) {
    values[j] = engine_->delay_ms(j, node);
  }
  row_epochs_[row] = engine_->epoch();
}

void DelayMatrixCache::bind_row(std::size_t row, NodeId node) {
  if (row >= rows_.size()) {
    rows_.resize(row + 1);
    nodes_.resize(row + 1, kInvalidNode);
    row_epochs_.resize(row + 1, 0);
  }
  if (node >= node_to_row_.size()) {
    node_to_row_.resize(node + 1, kUnbound);
  }
  if (nodes_[row] != kInvalidNode) {
    node_to_row_[nodes_[row]] = kUnbound;
  } else {
    ++bound_;
  }
  nodes_[row] = node;
  node_to_row_[node] = row;
  fill_row(row);
}

void DelayMatrixCache::unbind_row(std::size_t row) {
  if (row >= rows_.size() || nodes_[row] == kInvalidNode) return;
  node_to_row_[nodes_[row]] = kUnbound;
  nodes_[row] = kInvalidNode;
  --bound_;
}

std::size_t DelayMatrixCache::refresh() {
  drain_scratch_.clear();
  engine_->drain_dirty(drain_scratch_);
  std::size_t refreshed = 0;
  for (const NodeId node : drain_scratch_) {
    if (node >= node_to_row_.size()) continue;
    const std::size_t row = node_to_row_[node];
    if (row == kUnbound) continue;
    fill_row(row);
    ++refreshed;
  }
  rows_refreshed_ += refreshed;
  rows_saved_ += bound_ - refreshed;
  return refreshed;
}

void DelayMatrixCache::refresh_all() {
  drain_scratch_.clear();
  engine_->drain_dirty(drain_scratch_);
  for (std::size_t row = 0; row < rows_.size(); ++row) {
    if (nodes_[row] == kInvalidNode) continue;
    fill_row(row);
    ++rows_refreshed_;
  }
}

DelayMatrix DelayMatrixCache::materialize() const {
  DelayMatrix matrix(rows_.size(), engine_->server_count(), kUnreachable);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (nodes_[i] == kInvalidNode) continue;
    for (std::size_t j = 0; j < rows_[i].size(); ++j) {
      matrix.set(i, j, rows_[i][j]);
    }
  }
  return matrix;
}

void DelayMatrixCache::check_invariants() const {
  TACC_CHECK_INVARIANT(
      nodes_.size() == rows_.size() && row_epochs_.size() == rows_.size(),
      "row/node/epoch arrays must stay parallel");

  const std::uint64_t engine_epoch = engine_->epoch();
  std::size_t bound_seen = 0;
  for (std::size_t row = 0; row < rows_.size(); ++row) {
    const NodeId node = nodes_[row];
    if (node == kInvalidNode) continue;
    ++bound_seen;
    TACC_CHECK_INVARIANT(node < node_to_row_.size() &&
                             node_to_row_[node] == row,
                         "bound row missing from the node->row index: row " +
                             std::to_string(row));
    TACC_CHECK_INVARIANT(row_epochs_[row] <= engine_epoch,
                         "row stamped with an epoch from the future: row " +
                             std::to_string(row));
    TACC_CHECK_INVARIANT(rows_[row].size() == engine_->server_count(),
                         "bound row has the wrong width: row " +
                             std::to_string(row));
    // Dirty-set soundness: values that drifted from the engine's trees are
    // only acceptable while the node is queued for the next refresh().
    if (!engine_->is_dirty(node)) {
      for (std::size_t j = 0; j < rows_[row].size(); ++j) {
        TACC_CHECK_INVARIANT(
            rows_[row][j] == engine_->delay_ms(j, node),
            "stale cached delay with a clean dirty set: row " +
                std::to_string(row) + ", server " + std::to_string(j));
      }
    }
  }
  TACC_CHECK_INVARIANT(bound_seen == bound_,
                       "bound-row count out of sync with bindings");
  for (std::size_t node = 0; node < node_to_row_.size(); ++node) {
    const std::size_t row = node_to_row_[node];
    if (row == kUnbound) continue;
    TACC_CHECK_INVARIANT(row < nodes_.size() && nodes_[row] == node,
                         "node->row index points at a row bound elsewhere: "
                         "node " +
                             std::to_string(node));
  }
}

std::uint64_t DelayMatrixCache::fingerprint() const {
  // Same splitmix64 chaining as Scenario::fingerprint(): order-sensitive,
  // platform-stable. The epoch ties the digest to the mutation history even
  // when a fail/restore pair returns the values to their start state.
  std::uint64_t state = 0x7ACC5EEDULL;
  std::uint64_t digest = 0;
  const auto mix = [&state, &digest](std::uint64_t value) {
    state ^= value;
    digest = util::splitmix64(state);
  };
  mix(engine_->epoch());
  mix(static_cast<std::uint64_t>(bound_));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (nodes_[i] == kInvalidNode) continue;
    mix(static_cast<std::uint64_t>(i));
    mix(static_cast<std::uint64_t>(nodes_[i]));
    for (const double value : rows_[i]) {
      mix(std::bit_cast<std::uint64_t>(value));
    }
  }
  return digest;
}

}  // namespace tacc::topo::incr
