#include "topology/incremental/dynamic_sssp.hpp"

#include <algorithm>

namespace tacc::topo::incr {

DynamicSsspTree::DynamicSsspTree(const Graph& graph, NodeId source)
    : source_(source) {
  ShortestPathTree tree = dijkstra(graph, source);
  dist_ = std::move(tree.distance_ms);
  parent_ = std::move(tree.parent);
  mark_.assign(dist_.size(), 0);
  cmark_.assign(dist_.size(), 0);
}

void DynamicSsspTree::ensure_node_count(std::size_t count) {
  if (count <= dist_.size()) return;
  dist_.resize(count, kUnreachable);
  parent_.resize(count, kInvalidNode);
  mark_.resize(count, 0);
  cmark_.resize(count, 0);
}

void DynamicSsspTree::bump_epochs() {
  if (++mark_epoch_ == 0) {
    std::fill(mark_.begin(), mark_.end(), 0);
    mark_epoch_ = 1;
  }
  if (++cmark_epoch_ == 0) {
    std::fill(cmark_.begin(), cmark_.end(), 0);
    cmark_epoch_ = 1;
  }
}

void DynamicSsspTree::improve(NodeId node, double dist, NodeId via,
                              std::vector<NodeId>* changed) {
  if (changed != nullptr && cmark_[node] != cmark_epoch_) {
    cmark_[node] = cmark_epoch_;
    changed->push_back(node);
  }
  dist_[node] = dist;
  parent_[node] = via;
  heap_.push_back({dist, node});
  std::push_heap(heap_.begin(), heap_.end());
}

std::size_t DynamicSsspTree::run_heap(const Graph& graph, bool orphan_only,
                                      std::vector<NodeId>* changed) {
  std::size_t settled = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    if (top.dist > dist_[top.node]) continue;  // stale entry
    ++settled;
    for (const Adjacency& adj : graph.neighbors(top.node)) {
      if (orphan_only && !marked(adj.to)) continue;
      const double candidate = top.dist + adj.props.latency_ms;
      if (candidate < dist_[adj.to]) {
        improve(adj.to, candidate, top.node, changed);
      }
    }
  }
  return settled;
}

SsspUpdateStats DynamicSsspTree::on_edge_added(const Graph& graph, NodeId u,
                                               NodeId v, double latency_ms,
                                               std::vector<NodeId>& changed) {
  ensure_node_count(graph.node_count());
  bump_epochs();
  heap_.clear();
  const std::size_t before = changed.size();

  const double via_u = dist_[u] + latency_ms;
  if (via_u < dist_[v]) improve(v, via_u, u, &changed);
  const double via_v = dist_[v] + latency_ms;
  if (via_v < dist_[u]) improve(u, via_v, v, &changed);

  SsspUpdateStats stats;
  stats.nodes_affected = run_heap(graph, /*orphan_only=*/false, &changed);
  stats.nodes_changed = changed.size() - before;
  return stats;
}

SsspUpdateStats DynamicSsspTree::on_edge_removed(const Graph& graph, NodeId u,
                                                 NodeId v,
                                                 std::vector<NodeId>& changed) {
  ensure_node_count(graph.node_count());
  // Only the tree edge's child-side subtree can be affected: every other
  // node's shortest path survives intact, and deletion never shortens one.
  if (parent_[v] == u) return repair_orphans(graph, v, changed);
  if (parent_[u] == v) return repair_orphans(graph, u, changed);
  return {};
}

SsspUpdateStats DynamicSsspTree::on_edge_latency_changed(
    const Graph& graph, NodeId u, NodeId v, double old_latency_ms,
    double new_latency_ms, std::vector<NodeId>& changed) {
  ensure_node_count(graph.node_count());
  if (new_latency_ms < old_latency_ms) {
    // A cheaper edge behaves exactly like a fresh insertion: only paths
    // through it can improve.
    return on_edge_added(graph, u, v, new_latency_ms, changed);
  }
  if (new_latency_ms > old_latency_ms) {
    // A costlier non-tree edge changes nothing; a costlier tree edge is a
    // deletion followed by re-relaxation in which the (still present,
    // reweighted) edge competes like any other frontier edge.
    if (parent_[v] == u) return repair_orphans(graph, v, changed);
    if (parent_[u] == v) return repair_orphans(graph, u, changed);
  }
  return {};
}

SsspUpdateStats DynamicSsspTree::repair_orphans(const Graph& graph,
                                                NodeId child,
                                                std::vector<NodeId>& changed) {
  bump_epochs();

  // Collect the subtree below `child` by scanning each orphan's neighbors
  // for nodes parented to it — tree children are always graph neighbors, so
  // this costs O(Σ deg(orphan)) without maintaining child lists.
  orphans_.clear();
  old_dist_.clear();
  mark_[child] = mark_epoch_;
  orphans_.push_back(child);
  for (std::size_t i = 0; i < orphans_.size(); ++i) {
    const NodeId x = orphans_[i];
    for (const Adjacency& adj : graph.neighbors(x)) {
      if (!marked(adj.to) && parent_[adj.to] == x) {
        mark_[adj.to] = mark_epoch_;
        orphans_.push_back(adj.to);
      }
    }
  }

  for (const NodeId x : orphans_) {
    old_dist_.push_back(dist_[x]);
    dist_[x] = kUnreachable;
    parent_[x] = kInvalidNode;
  }

  // Seed each orphan with its best non-orphan neighbor (those distances are
  // final — deletion/increase can only lengthen paths), then settle the
  // orphan region with a Dijkstra that never leaves it.
  heap_.clear();
  for (const NodeId x : orphans_) {
    for (const Adjacency& adj : graph.neighbors(x)) {
      if (marked(adj.to) || dist_[adj.to] == kUnreachable) continue;
      const double candidate = dist_[adj.to] + adj.props.latency_ms;
      if (candidate < dist_[x]) {
        dist_[x] = candidate;
        parent_[x] = adj.to;
      }
    }
    if (dist_[x] != kUnreachable) {
      heap_.push_back({dist_[x], x});
      std::push_heap(heap_.begin(), heap_.end());
    }
  }
  run_heap(graph, /*orphan_only=*/true, nullptr);

  SsspUpdateStats stats;
  stats.nodes_affected = orphans_.size();
  for (std::size_t i = 0; i < orphans_.size(); ++i) {
    if (dist_[orphans_[i]] != old_dist_[i]) {
      changed.push_back(orphans_[i]);
      ++stats.nodes_changed;
    }
  }
  return stats;
}

std::size_t DynamicSsspTree::scratch_bytes() const noexcept {
  return heap_.capacity() * sizeof(HeapEntry) +
         mark_.capacity() * sizeof(std::uint32_t) +
         cmark_.capacity() * sizeof(std::uint32_t) +
         orphans_.capacity() * sizeof(NodeId) +
         old_dist_.capacity() * sizeof(double);
}

}  // namespace tacc::topo::incr
