// DelayMatrixCache: versioned per-device delay rows over an
// IncrementalDelayEngine.
//
// A row holds one node's delay to every edge server, read from the engine's
// trees. Rows carry the engine epoch they were last written at; refresh()
// drains the engine's dirty set and rewrites only the rows whose node
// actually moved, so a link event that strands 2% of the network touches 2%
// of the bound rows. fingerprint() digests the epoch together with the bound
// row values, so equal fingerprints mean identical cached delays even as the
// topology churns.
//
// Thread safety: none — the cache carries no lock of its own. Its owner
// serializes access: in the serving layer every path to it goes through the
// owning session's cluster mutex (Session::cluster is
// TACC_PT_GUARDED_BY(cluster_mutex)), and the tools/ast_lint.py R7 check
// keeps solvers/optimizer code from reaching a DelayMatrixCache directly.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/incremental/engine.hpp"

namespace tacc::topo::incr {

class DelayMatrixCache {
 public:
  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);

  /// The engine must outlive the cache.
  explicit DelayMatrixCache(IncrementalDelayEngine& engine);

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }
  [[nodiscard]] std::size_t bound_count() const noexcept { return bound_; }

  /// Binds `row` (growing storage as needed) to `node` and fills it from
  /// the engine's trees. Rebinds in place if the row was already bound.
  void bind_row(std::size_t row, NodeId node);
  /// Detaches `row` from its node; the values become stale and the row is
  /// skipped by refresh() until bound again.
  void unbind_row(std::size_t row);
  [[nodiscard]] NodeId row_node(std::size_t row) const {
    return nodes_.at(row);
  }

  /// The cached per-server delays for `row` (valid after bind/refresh).
  [[nodiscard]] const std::vector<double>& row(std::size_t row) const {
    return rows_[row];
  }
  /// Engine epoch at which `row` was last written.
  [[nodiscard]] std::uint64_t row_epoch(std::size_t row) const {
    return row_epochs_.at(row);
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return engine_->epoch();
  }

  /// Drains the engine's dirty nodes and rewrites the bound rows among
  /// them. Returns the number of rows rewritten; the rest were saved.
  std::size_t refresh();

  /// Rewrites every bound row unconditionally (recovery hatch after an
  /// engine rebuild()); counts toward rows_refreshed.
  void refresh_all();

  /// Cached rows as a dense DelayMatrix in row order (unbound rows filled
  /// with kUnreachable).
  [[nodiscard]] DelayMatrix materialize() const;

  /// Digest of (engine epoch, bindings, bound row values); identical iff
  /// the cached view is identical. Stable across platforms.
  [[nodiscard]] std::uint64_t fingerprint() const;

  // Cumulative refresh() accounting for STATS reporting.
  [[nodiscard]] std::uint64_t rows_refreshed() const noexcept {
    return rows_refreshed_;
  }
  [[nodiscard]] std::uint64_t rows_saved() const noexcept {
    return rows_saved_;
  }

  /// Deep validation, reported through the contracts failure handler:
  ///  - row/node/epoch arrays stay parallel, bound_ matches the bindings,
  ///    and node_to_row_ is the exact inverse of nodes_;
  ///  - per-row epoch coherence: no row is stamped past the engine epoch;
  ///  - dirty-set soundness: a bound row whose cached values differ from
  ///    the engine's current tree values must have its node in the engine's
  ///    dirty set (i.e. a refresh() would rewrite it) — otherwise the cache
  ///    is serving stale delays it believes are current.
  /// Cold path; for tests and sampled bench epochs.
  void check_invariants() const;

 private:
  friend struct CacheTestPeer;  ///< corruption hook for invariant tests
  void fill_row(std::size_t row);

  IncrementalDelayEngine* engine_;
  std::vector<std::vector<double>> rows_;
  std::vector<NodeId> nodes_;             ///< per row; kInvalidNode if unbound
  std::vector<std::uint64_t> row_epochs_;
  std::vector<std::size_t> node_to_row_;  ///< per node; kUnbound if none
  std::size_t bound_ = 0;
  std::vector<NodeId> drain_scratch_;
  std::uint64_t rows_refreshed_ = 0;
  std::uint64_t rows_saved_ = 0;
};

}  // namespace tacc::topo::incr
