// Undirected weighted graph with adjacency-list storage.
//
// Nodes are dense indices [0, node_count). Each undirected edge is stored
// once per endpoint; latency is the routing metric (milliseconds), bandwidth
// feeds the discrete-event simulator's transmission-delay model.
//
// Nodes can be released back to a free list (release_node) and reused
// (acquire_node), so churny workloads — IoT devices joining, moving and
// leaving a deployed network — keep the node table at peak-population size
// instead of growing without bound. Released ids stay valid indices (their
// adjacency is empty and algorithms see them as isolated); ids are recycled
// LIFO.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tacc::topo {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct EdgeProps {
  double latency_ms = 1.0;       ///< one-way propagation + forwarding cost
  double bandwidth_mbps = 100.0; ///< capacity for transmission delay
};

struct Adjacency {
  NodeId to = kInvalidNode;
  EdgeProps props;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count)
      : adjacency_(node_count), released_(node_count, false) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Returns a ready-to-use node id: the most recently released node if any
  /// (LIFO), otherwise a freshly appended one.
  NodeId acquire_node();

  /// Removes every edge incident to `node` and pushes its id onto the free
  /// list for acquire_node(). Throws std::out_of_range for bad ids and
  /// std::invalid_argument if the node is already released.
  void release_node(NodeId node);

  [[nodiscard]] bool node_released(NodeId node) const {
    return released_.at(node);
  }
  /// Nodes currently on the free list.
  [[nodiscard]] std::size_t released_node_count() const noexcept {
    return free_list_.size();
  }
  /// Nodes in service (node_count() minus the free list).
  [[nodiscard]] std::size_t live_node_count() const noexcept {
    return adjacency_.size() - free_list_.size();
  }

  /// Adds an undirected edge u–v. Throws std::out_of_range for bad ids and
  /// std::invalid_argument for self-loops, non-positive latency, or
  /// released endpoints.
  void add_edge(NodeId u, NodeId v, EdgeProps props);

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId node) const {
    return adjacency_.at(node);
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Properties of the first u–v edge, or nullptr if absent. The pointer is
  /// invalidated by any mutation of u's adjacency.
  [[nodiscard]] const EdgeProps* edge_props(NodeId u, NodeId v) const;

  /// Removes one undirected edge u–v (the first match if parallel edges
  /// exist). Returns false if no such edge. Supports failure injection.
  bool remove_edge(NodeId u, NodeId v);

  /// Rewrites the latency of the first u–v edge in place (both mirror
  /// entries). Returns false if no such edge; throws std::invalid_argument
  /// for non-positive latency. Supports live link reweighting.
  bool set_edge_latency(NodeId u, NodeId v, double latency_ms);

  /// Degree of `node` (number of incident undirected edges).
  [[nodiscard]] std::size_t degree(NodeId node) const {
    return adjacency_.at(node).size();
  }

  /// Total latency-weighted size; useful as a quick structural fingerprint.
  [[nodiscard]] double total_latency() const noexcept;

  /// Deep structural validation, reported through the contracts failure
  /// handler (src/util/contracts.hpp):
  ///  - free list / live nodes are disjoint, with consistent bookkeeping
  ///    (every free-list id is marked released exactly once, released nodes
  ///    have empty adjacency);
  ///  - adjacency is symmetric: the k-th u->v entry mirrors the k-th v->u
  ///    entry with identical properties, and edge_count() matches;
  ///  - no self-loops, no edges touching released nodes, all latencies
  ///    positive.
  /// Cold path (O(V + E·deg)); meant for tests and sampled bench epochs.
  void check_invariants() const;

 private:
  friend struct GraphTestPeer;  ///< corruption hook for invariant tests
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<bool> released_;      ///< per node: on the free list?
  std::vector<NodeId> free_list_;   ///< released ids, reused LIFO
  std::size_t edges_ = 0;
};

}  // namespace tacc::topo
