// Undirected weighted graph with adjacency-list storage.
//
// Nodes are dense indices [0, node_count). Each undirected edge is stored
// once per endpoint; latency is the routing metric (milliseconds), bandwidth
// feeds the discrete-event simulator's transmission-delay model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tacc::topo {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct EdgeProps {
  double latency_ms = 1.0;       ///< one-way propagation + forwarding cost
  double bandwidth_mbps = 100.0; ///< capacity for transmission delay
};

struct Adjacency {
  NodeId to = kInvalidNode;
  EdgeProps props;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds an undirected edge u–v. Throws std::out_of_range for bad ids and
  /// std::invalid_argument for self-loops or non-positive latency.
  void add_edge(NodeId u, NodeId v, EdgeProps props);

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId node) const {
    return adjacency_.at(node);
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Removes one undirected edge u–v (the first match if parallel edges
  /// exist). Returns false if no such edge. Supports failure injection.
  bool remove_edge(NodeId u, NodeId v);

  /// Degree of `node` (number of incident undirected edges).
  [[nodiscard]] std::size_t degree(NodeId node) const {
    return adjacency_.at(node).size();
  }

  /// Total latency-weighted size; useful as a quick structural fingerprint.
  [[nodiscard]] double total_latency() const noexcept;

 private:
  std::vector<std::vector<Adjacency>> adjacency_;
  std::size_t edges_ = 0;
};

}  // namespace tacc::topo
