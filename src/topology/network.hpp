// The deployed network: infrastructure graph plus attached IoT devices and
// edge servers, and the topology-aware delay matrix derived from it.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "topology/delay_model.hpp"
#include "topology/generators.hpp"
#include "topology/geometry.hpp"
#include "topology/graph.hpp"

namespace tacc::topo {

enum class NodeKind : std::uint8_t { kRouter, kIotDevice, kEdgeServer };

/// Dense row-major matrix of IoT→edge values (delay in ms, or hop counts).
class DelayMatrix {
 public:
  DelayMatrix() = default;
  explicit DelayMatrix(std::size_t iot_count, std::size_t edge_count,
                       double fill = 0.0)
      : rows_(iot_count), cols_(edge_count), data_(iot_count * edge_count, fill) {}

  [[nodiscard]] std::size_t iot_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return cols_; }

  [[nodiscard]] double at(std::size_t iot, std::size_t edge) const {
    check(iot, edge);
    return data_[iot * cols_ + edge];
  }
  void set(std::size_t iot, std::size_t edge, double value) {
    check(iot, edge);
    data_[iot * cols_ + edge] = value;
  }

  /// Row view: all edge-server delays for one IoT device.
  [[nodiscard]] std::span<const double> row(std::size_t iot) const {
    if (iot >= rows_) throw std::out_of_range("DelayMatrix row out of range");
    return {data_.data() + iot * cols_, cols_};
  }

 private:
  void check(std::size_t iot, std::size_t edge) const {
    if (iot >= rows_ || edge >= cols_) {
      throw std::out_of_range("DelayMatrix index out of range");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A link taken out of service in place, with the properties needed to put
/// it back. Endpoints are stored unordered (matched either way).
struct FailedLink {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  EdgeProps props;
};

/// Infrastructure + devices. IoT device k lives at graph node iot_nodes[k];
/// edge server j at edge_nodes[j].
struct NetworkTopology {
  Graph graph;
  std::vector<Point2D> positions;  ///< per graph node
  std::vector<NodeKind> kinds;     ///< per graph node
  std::vector<NodeId> iot_nodes;   ///< device index → node id
  std::vector<NodeId> edge_nodes;  ///< server index → node id
  std::vector<FailedLink> failed_links;  ///< links failed in place

  [[nodiscard]] std::size_t iot_count() const noexcept {
    return iot_nodes.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edge_nodes.size();
  }
  [[nodiscard]] Point2D iot_position(std::size_t device) const {
    return positions.at(iot_nodes.at(device));
  }
  [[nodiscard]] Point2D edge_position(std::size_t server) const {
    return positions.at(edge_nodes.at(server));
  }

  /// Acquires a graph node (recycling a released one when available) and
  /// records its position/kind. Callers wire the access links themselves.
  NodeId acquire_node(Point2D pos, NodeKind kind);
  /// Drops `node`'s access links and returns it to the graph's free list;
  /// its position/kind slots are reused by the next acquire_node().
  void release_node(NodeId node) { graph.release_node(node); }

  // ---- In-place link mutation (live topology churn) -----------------------
  // These mutate THIS network instead of copying it. Callers that maintain
  // derived state (delay matrices, shortest-path trees) should route
  // mutations through an incr::IncrementalDelayEngine so that state is
  // updated incrementally.

  /// Takes the u–v link out of service: removes the edge and records its
  /// properties on `failed_links` for restore_link(). Throws
  /// std::invalid_argument if no such link exists.
  EdgeProps fail_link(NodeId u, NodeId v);
  /// Puts a previously failed u–v link back with its recorded properties.
  /// Throws std::invalid_argument if the link is not in `failed_links`.
  EdgeProps restore_link(NodeId u, NodeId v);
  /// Rewrites the latency of a live u–v link in place; returns the previous
  /// properties. Throws std::invalid_argument if no such link exists or the
  /// latency is not positive.
  EdgeProps set_link_latency(NodeId u, NodeId v, double latency_ms);
  /// True iff u–v is currently recorded as failed.
  [[nodiscard]] bool link_failed(NodeId u, NodeId v) const noexcept;

  /// Deep validation, reported through the contracts failure handler:
  ///  - graph.check_invariants();
  ///  - positions/kinds cover every graph node;
  ///  - edge_nodes are live kEdgeServer nodes; iot_nodes are live
  ///    kIotDevice nodes (kInvalidNode marks a detached device slot);
  ///  - failed-link bookkeeping matches the edge set: a recorded failed
  ///    link must NOT be present as a live edge (else restore_link would
  ///    double it), its endpoints must be valid, and its saved properties
  ///    restorable (positive latency).
  /// Cold path; meant for tests and sampled bench epochs.
  void check_invariants() const;
};

struct AttachParams {
  /// Each device/server connects to its `attach_count` nearest routers
  /// (multi-homing > 1 adds route diversity).
  std::size_t attach_count = 1;
};

/// Attaches devices and servers to the infrastructure via access links.
/// Requires non-empty infra and at least one position in each span.
[[nodiscard]] NetworkTopology build_network(
    const GeoGraph& infrastructure, std::span<const Point2D> iot_positions,
    std::span<const Point2D> edge_positions, const LinkDelayModel& delay,
    const AttachParams& attach = {});

/// Shortest-path delay (ms) from every IoT device to every edge server.
/// Runs one Dijkstra per edge server (m << n in practice).
/// `threads` spreads the per-server Dijkstra runs over a worker pool
/// (1 = serial, 0 = hardware concurrency); the matrix is bit-identical for
/// any thread count.
[[nodiscard]] DelayMatrix compute_delay_matrix(const NetworkTopology& net,
                                               std::size_t threads = 1);

/// Hop counts on the same paths; useful for diagnostics/ablation.
[[nodiscard]] DelayMatrix compute_hop_matrix(const NetworkTopology& net);

/// Straight-line distances (km); the *topology-oblivious* cost used by the
/// geometric-nearest baseline and the A1 ablation.
[[nodiscard]] DelayMatrix compute_euclidean_matrix(const NetworkTopology& net);

}  // namespace tacc::topo
