// Backend selection for the pluggable delay oracle (see oracle.hpp).
//
// Deliberately a light header — core/configurator.hpp embeds an OracleConfig
// in every ConfigureRequest, and the service layer parses wire specs
// ("exact", "landmark,k=8,eps=0.2") into one. The heavy machinery lives in
// oracle.hpp / exact.hpp / landmark.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tacc::topo::oracle {

enum class OracleBackend : std::uint8_t {
  kExact,     ///< IncrementalDelayEngine + DelayMatrixCache (bit-exact)
  kLandmark,  ///< landmark/ALT envelopes with exact fallback
};

[[nodiscard]] std::string_view to_string(OracleBackend backend) noexcept;

/// Everything needed to build a DelayOracle (see make_oracle in oracle.hpp).
/// Defaults reproduce today's behavior exactly: the exact backend with no
/// row compression.
struct OracleConfig {
  OracleBackend backend = OracleBackend::kExact;
  /// Landmark count k (farthest-point sampled over router nodes).
  std::size_t landmarks = 8;
  /// Max certified relative error eps: a bound envelope [lo, hi] is served
  /// only when hi <= lo * (1 + eps) (+ tiny absolute slack); otherwise the
  /// entry falls back to an exact shortest-path value.
  double max_rel_error = 0.1;
  /// Route rows through the QuantizedRowStore (LRU hot set of exact rows,
  /// uint16-quantized cold rows, bounded residency). Opt-in: it trades
  /// bit-exactness for bounded memory, so the default exact backend never
  /// compresses.
  bool compress = false;
  /// Hot (exact, uncompressed) rows kept by the row store; the cold
  /// quantized tier holds kColdPerHot x this many rows.
  std::size_t hot_rows = 64;
  /// Seed for the deterministic landmark selection.
  std::uint64_t seed = 1;

  friend bool operator==(const OracleConfig&, const OracleConfig&) = default;
};

/// Parses "exact[,compress=0|1][,hot=N]" or
/// "landmark[,k=N][,eps=X][,compress=0|1][,hot=N][,seed=N]" — the same spec
/// accepted by `taccd --oracle=` and the CONFIGURE wire option. Throws
/// std::invalid_argument (listing the valid keys) on an unknown backend,
/// unknown key, or out-of-range value. An empty spec means the default
/// exact backend.
[[nodiscard]] OracleConfig parse_oracle_spec(std::string_view spec);

/// Canonical spec round-trip: parse_oracle_spec(to_string(c)) == c.
[[nodiscard]] std::string to_string(const OracleConfig& config);

}  // namespace tacc::topo::oracle
