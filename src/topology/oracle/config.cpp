#include "topology/oracle/config.hpp"

#include <charconv>
#include <stdexcept>

namespace tacc::topo::oracle {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument(
      "parse_oracle_spec: " + why + " in \"" + std::string(spec) +
      "\"; expected exact[,compress=0|1][,hot=N] or "
      "landmark[,k=N][,eps=X][,compress=0|1][,hot=N][,seed=N]");
}

double parse_number(std::string_view spec, std::string_view key,
                    std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    bad_spec(spec, "malformed value for " + std::string(key));
  }
  return out;
}

}  // namespace

std::string_view to_string(OracleBackend backend) noexcept {
  switch (backend) {
    case OracleBackend::kExact:
      return "exact";
    case OracleBackend::kLandmark:
      return "landmark";
  }
  return "exact";
}

OracleConfig parse_oracle_spec(std::string_view spec) {
  OracleConfig config;
  if (spec.empty()) return config;

  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view token =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    start = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (first) {
      first = false;
      if (token == "exact") {
        config.backend = OracleBackend::kExact;
      } else if (token == "landmark") {
        config.backend = OracleBackend::kLandmark;
      } else {
        bad_spec(spec, "unknown backend \"" + std::string(token) + "\"");
      }
      continue;
    }
    if (token.empty()) bad_spec(spec, "empty parameter");
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      bad_spec(spec, "parameter without '=' (\"" + std::string(token) + "\")");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    const bool landmark = config.backend == OracleBackend::kLandmark;
    if (key == "k" && landmark) {
      const double k = parse_number(spec, key, value);
      if (k < 1.0 || k != static_cast<double>(static_cast<std::size_t>(k))) {
        bad_spec(spec, "k must be a positive integer");
      }
      config.landmarks = static_cast<std::size_t>(k);
    } else if (key == "eps" && landmark) {
      const double eps = parse_number(spec, key, value);
      if (eps < 0.0 || eps > 10.0) bad_spec(spec, "eps must be in [0, 10]");
      config.max_rel_error = eps;
    } else if (key == "seed" && landmark) {
      config.seed = static_cast<std::uint64_t>(parse_number(spec, key, value));
    } else if (key == "compress") {
      const double flag = parse_number(spec, key, value);
      if (flag != 0.0 && flag != 1.0) bad_spec(spec, "compress must be 0 or 1");
      config.compress = flag != 0.0;
    } else if (key == "hot") {
      const double hot = parse_number(spec, key, value);
      if (hot < 1.0) bad_spec(spec, "hot must be >= 1");
      config.hot_rows = static_cast<std::size_t>(hot);
    } else {
      bad_spec(spec, "unknown key \"" + std::string(key) + "\" for backend " +
                         std::string(to_string(config.backend)));
    }
  }
  return config;
}

std::string to_string(const OracleConfig& config) {
  std::string out(to_string(config.backend));
  if (config.backend == OracleBackend::kLandmark) {
    out += ",k=" + std::to_string(config.landmarks);
    out += ",eps=" + std::to_string(config.max_rel_error);
    out += ",seed=" + std::to_string(config.seed);
  }
  out += ",compress=" + std::to_string(config.compress ? 1 : 0);
  out += ",hot=" + std::to_string(config.hot_rows);
  return out;
}

}  // namespace tacc::topo::oracle
