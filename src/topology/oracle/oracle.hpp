// DelayOracle: the pluggable device->server delay estimation interface.
//
// Every consumer of per-device delay rows (DynamicCluster placement, the
// re-optimizer's planner, avg-delay metrics, the STATS wire surface) goes
// through this interface instead of touching DelayMatrixCache directly
// (lint rule R7). Backends:
//
//   ExactOracle     (exact.hpp)    — wraps IncrementalDelayEngine +
//                                    DelayMatrixCache; the default, and
//                                    bit-identical to pre-oracle behavior.
//   LandmarkOracle  (landmark.hpp) — landmark/ALT lower+upper bound
//                                    envelopes with exact fallback; O(k)
//                                    per entry instead of dense rows.
//
// Either backend can layer a QuantizedRowStore (rowstore.hpp) underneath
// for bounded residency (config.compress).
//
// Contract mirror of DelayMatrixCache: rows are bound to graph nodes, carry
// the epoch they were last written at, refresh() drains the pending
// invalidations (the engine's dirty set for attached backends), and
// fingerprint() digests the cached view. Approximate/compressed backends
// cannot digest values they never materialize, so their fingerprint covers
// (epoch, bindings, backend identity) only — still a change detector, but
// not a value digest; only the default ExactOracle reproduces
// DelayMatrixCache::fingerprint() bit-for-bit.
//
// Thread safety: none. Oracles are owned by a DynamicCluster and share its
// external synchronization. Backends with an LRU row store mutate internal
// state on logically-const reads (row(), delay_ms()), so even concurrent
// readers must be externally serialized for non-default backends. In the
// serving layer that serialization point is the session's cluster mutex:
// service::Engine::Session declares its cluster TACC_PT_GUARDED_BY
// (cluster_mutex), so the thread-safety analysis proves every oracle call
// routed through a session happens under that lock (see DESIGN.md,
// "Locking discipline").
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "topology/incremental/engine.hpp"
#include "topology/oracle/config.hpp"

namespace tacc::topo::oracle {

/// A certified delay envelope: exact is in [lo_ms, hi_ms] whenever
/// `certified` (always true for the exact backend, where lo == hi). An
/// uncertified envelope means the backend could not bound the entry and a
/// caller needing guarantees must take the exact value instead.
struct DelayBounds {
  double lo_ms = 0.0;
  double hi_ms = 0.0;
  bool certified = true;
};

/// Cumulative query accounting, surfaced by the ORACLE_STATS wire verb.
/// `width_hist` buckets the relative envelope width (hi-lo)/max(lo, 1e-9)
/// of served bound entries at < 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, inf.
struct OracleStats {
  std::uint64_t queries = 0;          ///< row entries served
  std::uint64_t bound_hits = 0;       ///< served from a certified envelope
  std::uint64_t exact_fallbacks = 0;  ///< envelope too loose; exact value
  std::uint64_t row_fills = 0;        ///< rows (re)computed
  std::uint64_t rebuilds = 0;         ///< full landmark rebuilds (gate: 0)
  std::array<std::uint64_t, 8> width_hist{};
};

class DelayOracle {
 public:
  DelayOracle() = default;
  virtual ~DelayOracle();
  DelayOracle(const DelayOracle&) = delete;
  DelayOracle& operator=(const DelayOracle&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t server_count() const = 0;

  // ---- Row bindings (DelayMatrixCache contract) ---------------------------
  virtual void bind_row(std::size_t row, NodeId node) = 0;
  virtual void unbind_row(std::size_t row) = 0;
  [[nodiscard]] virtual NodeId row_node(std::size_t row) const = 0;
  [[nodiscard]] virtual std::size_t row_count() const = 0;
  [[nodiscard]] virtual std::size_t bound_count() const = 0;

  // ---- Queries ------------------------------------------------------------
  /// The served per-server delay row. For approximate backends every entry
  /// e satisfies exact <= e <= (1+eps)·exact + slack (see landmark.hpp).
  /// The reference stays valid until the backend evicts the row (stable
  /// until the next mutation for uncompressed backends; until hot-set
  /// eviction for compressed ones) — read it before querying other rows.
  [[nodiscard]] virtual const std::vector<double>& row(
      std::size_t row) const = 0;
  /// One served entry; same guarantees as row().
  [[nodiscard]] virtual double delay_ms(std::size_t row,
                                        std::size_t server) const;
  /// The certified envelope for one entry, computed live (never from
  /// compressed storage) — the property-tested containment guarantee.
  [[nodiscard]] virtual DelayBounds bounds_ms(std::size_t row,
                                              std::size_t server) const = 0;

  // ---- Epochs / invalidation ----------------------------------------------
  /// Processes pending invalidations (the engine dirty set and, for the
  /// landmark backend, rows whose certifying vectors moved). Returns the
  /// number of rows invalidated or rewritten.
  virtual std::size_t refresh() = 0;
  /// Rewrites/invalidates every bound row (recovery hatch after rebuild()).
  virtual void refresh_all() = 0;
  [[nodiscard]] virtual std::uint64_t epoch() const = 0;
  [[nodiscard]] virtual std::uint64_t row_epoch(std::size_t row) const = 0;
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;
  [[nodiscard]] virtual std::uint64_t rows_refreshed() const = 0;
  [[nodiscard]] virtual std::uint64_t rows_saved() const = 0;

  // ---- Introspection ------------------------------------------------------
  /// Bytes resident in the backend beyond the shared engine (row storage,
  /// landmark vectors, bookkeeping).
  [[nodiscard]] virtual std::size_t resident_bytes() const = 0;
  [[nodiscard]] virtual const OracleStats& stats() const = 0;
  /// Served rows as a dense DelayMatrix (unbound rows kUnreachable). Forces
  /// materialization for lazy backends — bench/test use only.
  [[nodiscard]] virtual DelayMatrix materialize() const = 0;
  /// Deep validation via the contracts failure handler; cold path.
  virtual void check_invariants() const = 0;
};

/// Shared row<->node binding bookkeeping for store-backed backends (the
/// compressed ExactOracle and the LandmarkOracle): the same parallel-array +
/// inverse-index structure DelayMatrixCache keeps, without the row storage.
struct RowBindings {
  static constexpr std::size_t kUnbound = static_cast<std::size_t>(-1);

  std::vector<NodeId> nodes;             ///< per row; kInvalidNode if unbound
  std::vector<std::uint64_t> epochs;     ///< per row: epoch last written
  std::vector<std::size_t> node_to_row;  ///< per node; kUnbound if none
  std::size_t bound = 0;

  /// Binds `row` to `node`, growing the arrays; true if the row was
  /// previously bound (a rebind).
  bool bind(std::size_t row, NodeId node);
  /// Unbinds `row`; false if it was not bound.
  bool unbind(std::size_t row);
  [[nodiscard]] NodeId row_node(std::size_t row) const {
    return nodes.at(row);
  }
  [[nodiscard]] std::size_t row_of(NodeId node) const noexcept {
    return node < node_to_row.size() ? node_to_row[node] : kUnbound;
  }
  /// Structural validation via the contracts failure handler.
  void check_invariants() const;
};

/// Builds the configured backend over `engine` (which must outlive the
/// oracle). The default config returns an ExactOracle that is bit-identical
/// to driving a DelayMatrixCache directly.
[[nodiscard]] std::unique_ptr<DelayOracle> make_oracle(
    const OracleConfig& config, incr::IncrementalDelayEngine& engine);

/// Histogram bucket for a relative envelope width (see OracleStats).
[[nodiscard]] std::size_t width_bucket(double relative_width) noexcept;

}  // namespace tacc::topo::oracle
