#include "topology/oracle/landmark.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc::topo::oracle {

namespace {

/// Absolute slack on the envelope acceptance test. Covers floating-point
/// rounding of path sums (computed shortest paths satisfy the triangle
/// inequality only up to summation order), so eps=0 still accepts envelopes
/// that are tight to the last ulp.
constexpr double kAcceptSlackMs = 1e-9;

/// Landmark vector entry; nodes beyond the tree (acquired but not yet wired
/// into any link) are unreachable by construction.
double tree_distance(const incr::DynamicSsspTree& tree, NodeId node) {
  return node < tree.node_count() ? tree.distance_ms(node) : kUnreachable;
}

}  // namespace

LandmarkOracle::LandmarkOracle(incr::IncrementalDelayEngine& engine,
                               const OracleConfig& config)
    : net_(&engine.network()),
      engine_(&engine),
      config_(config),
      server_nodes_(engine.network().edge_nodes),
      store_(server_nodes_.size(), config.hot_rows,
             config.hot_rows * kColdPerHot) {
  is_server_node_.assign(net_->graph.node_count(), 0);
  for (const NodeId node : server_nodes_) {
    if (node >= is_server_node_.size()) is_server_node_.resize(node + 1, 0);
    is_server_node_[node] = 1;
  }
  select_landmarks();
  engine_->add_listener(this);
}

LandmarkOracle::LandmarkOracle(const NetworkTopology& net,
                               const OracleConfig& config)
    : net_(&net),
      engine_(nullptr),
      config_(config),
      server_nodes_(net.edge_nodes),
      store_(server_nodes_.size(), config.hot_rows,
             config.hot_rows * kColdPerHot) {
  is_server_node_.assign(net_->graph.node_count(), 0);
  for (const NodeId node : server_nodes_) {
    if (node >= is_server_node_.size()) is_server_node_.resize(node + 1, 0);
    is_server_node_[node] = 1;
  }
  select_landmarks();
}

LandmarkOracle::~LandmarkOracle() {
  if (engine_ != nullptr) engine_->remove_listener(this);
}

std::string_view LandmarkOracle::name() const noexcept { return "landmark"; }

void LandmarkOracle::select_landmarks() {
  const Graph& graph = net_->graph;
  std::vector<NodeId> candidates;
  for (NodeId node = 0; node < graph.node_count(); ++node) {
    if (graph.node_released(node)) continue;
    if (net_->kinds[node] == NodeKind::kRouter) candidates.push_back(node);
  }
  if (candidates.empty()) {
    // Degenerate nets without infrastructure: fall back to any live node.
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      if (!graph.node_released(node)) candidates.push_back(node);
    }
  }
  TACC_REQUIRE(!candidates.empty(),
               "landmark selection needs a non-empty graph");
  const std::size_t count =
      std::min(std::max<std::size_t>(config_.landmarks, 1),
               candidates.size());

  landmark_nodes_.clear();
  landmark_trees_.clear();
  landmark_nodes_.reserve(count);
  landmark_trees_.reserve(count);

  // Farthest-point sampling: seed-deterministic first pick, then repeatedly
  // take the candidate farthest from the chosen set (unreachable first,
  // lowest id among ties — candidates are id-ordered and ties keep the
  // first winner). The k construction Dijkstras double as the landmark
  // trees, so selection costs nothing extra.
  util::Rng rng(config_.seed);
  std::vector<double> closest(graph.node_count(), kUnreachable);
  std::vector<std::uint8_t> chosen(graph.node_count(), 0);
  NodeId next = candidates[rng.index(candidates.size())];
  for (std::size_t i = 0; i < count; ++i) {
    landmark_nodes_.push_back(next);
    chosen[next] = 1;
    landmark_trees_.emplace_back(graph, next);
    const std::vector<double>& dist = landmark_trees_.back().distances();
    for (const NodeId node : candidates) {
      closest[node] = std::min(closest[node], dist[node]);
    }
    if (i + 1 == count) break;
    NodeId best = kInvalidNode;
    double best_dist = -1.0;
    for (const NodeId node : candidates) {
      if (chosen[node] != 0) continue;
      if (best == kInvalidNode || closest[node] > best_dist) {
        best = node;
        best_dist = closest[node];
      }
    }
    TACC_ENSURE(best != kInvalidNode, "ran out of landmark candidates");
    next = best;
  }
}

void LandmarkOracle::bind_row(std::size_t row, NodeId node) {
  book_.bind(row, node);
  if (row_has_exact_.size() < book_.nodes.size()) {
    row_has_exact_.resize(book_.nodes.size(), 0);
  }
  if (row_pending_.size() < book_.nodes.size()) {
    row_pending_.resize(book_.nodes.size(), 0);
  }
  row_has_exact_[row] = 0;
  // A fresh binding supersedes both the resident values and any queued
  // invalidation for this row slot.
  row_pending_[row] = 0;
  store_.erase(row);
}

void LandmarkOracle::unbind_row(std::size_t row) {
  if (!book_.unbind(row)) return;
  store_.erase(row);
  row_has_exact_[row] = 0;
  if (row < row_pending_.size()) row_pending_[row] = 0;
}

bool LandmarkOracle::accept(const DelayBounds& bounds) const noexcept {
  if (bounds.hi_ms == kUnreachable) {
    return bounds.lo_ms == kUnreachable;  // certified unreachable
  }
  return bounds.hi_ms <=
         bounds.lo_ms * (1.0 + config_.max_rel_error) + kAcceptSlackMs;
}

DelayBounds LandmarkOracle::envelope(NodeId node, NodeId server_node) const {
  double lo = 0.0;
  double hi = kUnreachable;
  for (const incr::DynamicSsspTree& tree : landmark_trees_) {
    const double to_node = tree_distance(tree, node);
    const double to_server = tree_distance(tree, server_node);
    if (to_node == kUnreachable && to_server == kUnreachable) continue;
    if (to_node == kUnreachable || to_server == kUnreachable) {
      // The landmark reaches exactly one endpoint, so (undirected graph)
      // the endpoints are in different components: certified unreachable.
      return {kUnreachable, kUnreachable, true};
    }
    lo = std::max(lo, std::fabs(to_node - to_server));
    hi = std::min(hi, to_node + to_server);
  }
  // No informative landmark leaves the trivial-but-valid [0, inf) envelope,
  // which never passes accept() and therefore falls back to exact.
  return {lo, hi, true};
}

void LandmarkOracle::compute_row(std::size_t row, NodeId node,
                                 std::vector<double>& out) const {
  out.resize(server_nodes_.size());
  bool has_exact = false;
  ShortestPathTree fallback;
  bool fallback_ready = false;
  for (std::size_t j = 0; j < server_nodes_.size(); ++j) {
    const DelayBounds bounds = envelope(node, server_nodes_[j]);
    if (bounds.hi_ms == kUnreachable) {
      ++stats_.width_hist[bounds.lo_ms == kUnreachable ? 0 : 7];
    } else {
      const double width = bounds.hi_ms - bounds.lo_ms;
      ++stats_.width_hist[width_bucket(width /
                                       std::max(bounds.lo_ms, 1e-9))];
    }
    if (accept(bounds)) {
      out[j] = bounds.hi_ms;
      ++stats_.bound_hits;
      continue;
    }
    ++stats_.exact_fallbacks;
    has_exact = true;
    if (engine_ != nullptr) {
      out[j] = engine_->delay_ms(j, node);
    } else {
      // One Dijkstra from the device node serves every loose entry of the
      // row — the standalone fallback cost is per ROW, not per entry.
      if (!fallback_ready) {
        fallback = dijkstra(net_->graph, node);
        fallback_ready = true;
      }
      out[j] = fallback.distance_ms[server_nodes_[j]];
    }
  }
  if (row < row_has_exact_.size()) row_has_exact_[row] = has_exact ? 1 : 0;
}

const std::vector<double>& LandmarkOracle::fetch_row(std::size_t row) const {
  if (const std::vector<double>* resident = store_.get(row)) {
    return *resident;
  }
  const NodeId node = book_.nodes.at(row);
  TACC_REQUIRE(node != kInvalidNode, "reading an unbound oracle row");
  compute_row(row, node, fill_scratch_);
  book_.epochs[row] = epoch();
  ++stats_.row_fills;
  return store_.put(row, fill_scratch_);
}

const std::vector<double>& LandmarkOracle::row(std::size_t row) const {
  stats_.queries += server_nodes_.size();
  return fetch_row(row);
}

double LandmarkOracle::delay_ms(std::size_t row, std::size_t server) const {
  ++stats_.queries;
  return fetch_row(row).at(server);
}

DelayBounds LandmarkOracle::bounds_ms(std::size_t row,
                                      std::size_t server) const {
  const NodeId node = book_.row_node(row);
  TACC_REQUIRE(node != kInvalidNode, "bounds for an unbound oracle row");
  return envelope(node, server_nodes_.at(server));
}

void LandmarkOracle::apply_mutation(int kind, NodeId u, NodeId v,
                                    double old_ms, double new_ms) {
  TACC_REQUIRE(engine_ == nullptr,
               "attached oracles receive mutations via the engine listener");
  repair_landmarks(kind, u, v, old_ms, new_ms);
}

void LandmarkOracle::on_mutation(int kind, NodeId u, NodeId v, double old_ms,
                                 double new_ms) {
  repair_landmarks(kind, u, v, old_ms, new_ms);
}

void LandmarkOracle::repair_landmarks(int kind, NodeId u, NodeId v,
                                      double old_ms, double new_ms) {
  const Graph& graph = net_->graph;
  changed_scratch_.clear();
  for (incr::DynamicSsspTree& tree : landmark_trees_) {
    tree.ensure_node_count(graph.node_count());
    switch (kind) {
      case 0:
        tree.on_edge_added(graph, u, v, new_ms, changed_scratch_);
        break;
      case 1:
        tree.on_edge_removed(graph, u, v, changed_scratch_);
        break;
      default:
        tree.on_edge_latency_changed(graph, u, v, old_ms, new_ms,
                                     changed_scratch_);
        break;
    }
  }
  if (engine_ != nullptr) return;  // the engine dirty set drives invalidation

  ++own_epoch_;
  for (const NodeId node : changed_scratch_) {
    if (node < is_server_node_.size() && is_server_node_[node] != 0) {
      // A server's landmark vector moved: every row holds an entry whose
      // envelope involved that vector, so everything resident is suspect.
      all_pending_ = true;
    }
    const std::size_t row = book_.row_of(node);
    if (row != RowBindings::kUnbound) mark_pending(row);
  }
  // Exact-fallback values carry no envelope that current vectors certify,
  // so rows holding any are conservatively re-dirtied on every mutation.
  for (std::size_t row = 0; row < row_has_exact_.size(); ++row) {
    if (row_has_exact_[row] != 0) mark_pending(row);
  }
}

void LandmarkOracle::mark_pending(std::size_t row) {
  if (row >= row_pending_.size()) row_pending_.resize(row + 1, 0);
  if (row_pending_[row] != 0) return;
  row_pending_[row] = 1;
  pending_rows_.push_back(row);
}

std::size_t LandmarkOracle::refresh() {
  std::size_t invalidated = 0;
  if (engine_ != nullptr) {
    drain_scratch_.clear();
    engine_->drain_dirty(drain_scratch_);
    for (const NodeId node : drain_scratch_) {
      const std::size_t row = book_.row_of(node);
      if (row == RowBindings::kUnbound) continue;
      store_.erase(row);
      row_has_exact_[row] = 0;
      ++invalidated;
    }
  } else if (all_pending_) {
    invalidated = book_.bound;
    store_.clear();
    std::fill(row_has_exact_.begin(), row_has_exact_.end(), 0);
    for (const std::size_t row : pending_rows_) row_pending_[row] = 0;
    pending_rows_.clear();
    all_pending_ = false;
  } else {
    for (const std::size_t row : pending_rows_) {
      if (row_pending_[row] == 0) continue;  // superseded by a rebind
      row_pending_[row] = 0;
      store_.erase(row);
      row_has_exact_[row] = 0;
      ++invalidated;
    }
    pending_rows_.clear();
  }
  rows_refreshed_ += invalidated;
  rows_saved_ += book_.bound > invalidated ? book_.bound - invalidated : 0;
  return invalidated;
}

void LandmarkOracle::refresh_all() {
  if (engine_ != nullptr) {
    drain_scratch_.clear();
    engine_->drain_dirty(drain_scratch_);
  } else {
    for (const std::size_t row : pending_rows_) row_pending_[row] = 0;
    pending_rows_.clear();
    all_pending_ = false;
    ++own_epoch_;
  }
  store_.clear();
  std::fill(row_has_exact_.begin(), row_has_exact_.end(), 0);
  rows_refreshed_ += book_.bound;
}

std::uint64_t LandmarkOracle::epoch() const {
  return engine_ != nullptr ? engine_->epoch() : own_epoch_;
}

std::uint64_t LandmarkOracle::fingerprint() const {
  // Values are never all materialized: digest the backend identity, the
  // epoch, the landmark set and the bindings (see oracle.hpp).
  std::uint64_t state = 0x7ACC5EEDULL;
  std::uint64_t digest = 0;
  const auto mix = [&state, &digest](std::uint64_t value) {
    state ^= value;
    digest = util::splitmix64(state);
  };
  mix(0x1A4DAA2CULL);  // backend tag
  mix(epoch());
  mix(static_cast<std::uint64_t>(book_.bound));
  for (const NodeId landmark : landmark_nodes_) {
    mix(static_cast<std::uint64_t>(landmark));
  }
  for (std::size_t i = 0; i < book_.nodes.size(); ++i) {
    if (book_.nodes[i] == kInvalidNode) continue;
    mix(static_cast<std::uint64_t>(i));
    mix(static_cast<std::uint64_t>(book_.nodes[i]));
  }
  return digest;
}

std::size_t LandmarkOracle::resident_bytes() const {
  std::size_t bytes = store_.resident_bytes() +
                      book_.nodes.capacity() * sizeof(NodeId) +
                      book_.epochs.capacity() * sizeof(std::uint64_t) +
                      book_.node_to_row.capacity() * sizeof(std::size_t) +
                      row_has_exact_.capacity() + row_pending_.capacity() +
                      is_server_node_.capacity() +
                      pending_rows_.capacity() * sizeof(std::size_t) +
                      server_nodes_.capacity() * sizeof(NodeId) +
                      landmark_nodes_.capacity() * sizeof(NodeId);
  for (const incr::DynamicSsspTree& tree : landmark_trees_) {
    bytes += tree.node_count() * (sizeof(double) + sizeof(NodeId));
    bytes += tree.scratch_bytes();
  }
  return bytes;
}

DelayMatrix LandmarkOracle::materialize() const {
  DelayMatrix matrix(book_.nodes.size(), server_nodes_.size(), kUnreachable);
  for (std::size_t i = 0; i < book_.nodes.size(); ++i) {
    if (book_.nodes[i] == kInvalidNode) continue;
    const std::vector<double>& values = fetch_row(i);
    for (std::size_t j = 0; j < values.size(); ++j) {
      matrix.set(i, j, values[j]);
    }
  }
  return matrix;
}

void LandmarkOracle::check_invariants() const {
  book_.check_invariants();
  store_.check_invariants();

  TACC_CHECK_INVARIANT(!landmark_nodes_.empty() &&
                           landmark_nodes_.size() == landmark_trees_.size(),
                       "one tree per landmark, at least one landmark");
  for (std::size_t k = 0; k < landmark_nodes_.size(); ++k) {
    const NodeId landmark = landmark_nodes_[k];
    TACC_CHECK_INVARIANT(landmark < net_->graph.node_count() &&
                             !net_->graph.node_released(landmark),
                         "landmark node no longer live: node " +
                             std::to_string(landmark));
    TACC_CHECK_INVARIANT(landmark_trees_[k].source() == landmark,
                         "landmark tree rooted at the wrong node");
  }

  // Pending-queue bookkeeping: every flagged row must be queued (queued
  // rows may have a cleared flag — a rebind supersedes the invalidation).
  std::vector<std::uint8_t> queued(row_pending_.size(), 0);
  for (const std::size_t row : pending_rows_) {
    TACC_CHECK_INVARIANT(row < row_pending_.size(),
                         "pending row beyond the flag bitmap");
    queued[row] = 1;
  }
  for (std::size_t row = 0; row < row_pending_.size(); ++row) {
    TACC_CHECK_INVARIANT(row_pending_[row] == 0 || queued[row] != 0,
                         "row flagged pending but not queued: row " +
                             std::to_string(row));
  }

  for (std::size_t row = 0; row < book_.nodes.size(); ++row) {
    TACC_CHECK_INVARIANT(
        book_.nodes[row] != kInvalidNode || !store_.contains(row),
        "unbound row still resident in the store: row " + std::to_string(row));
    TACC_CHECK_INVARIANT(book_.epochs[row] <= epoch(),
                         "row stamped with an epoch from the future: row " +
                             std::to_string(row));
  }

  // Landmark coherence: one tree (rotated by epoch so successive calls
  // sweep the set) compared bit-for-bit against a from-scratch Dijkstra —
  // the incremental repairs must be indistinguishable from a rebuild.
  const std::size_t k =
      static_cast<std::size_t>(epoch()) % landmark_trees_.size();
  const ShortestPathTree reference =
      dijkstra(net_->graph, landmark_nodes_[k]);
  for (NodeId node = 0; node < net_->graph.node_count(); ++node) {
    const double actual = tree_distance(landmark_trees_[k], node);
    const double expected = reference.distance_ms[node];
    TACC_CHECK_INVARIANT(
        actual == expected ||
            (actual == kUnreachable && expected == kUnreachable),
        "landmark tree " + std::to_string(k) +
            " diverged from Dijkstra at node " + std::to_string(node));
  }

  // Sampled envelope containment: one bound row (rotated by epoch) checked
  // against true distances. Tiny slack covers summation-order rounding.
  if (book_.bound > 0) {
    const std::size_t rows = book_.nodes.size();
    std::size_t row = static_cast<std::size_t>(epoch()) % rows;
    for (std::size_t step = 0; step < rows; ++step, row = (row + 1) % rows) {
      if (book_.nodes[row] != kInvalidNode) break;
    }
    const NodeId node = book_.nodes[row];
    const ShortestPathTree truth = dijkstra(net_->graph, node);
    for (std::size_t j = 0; j < server_nodes_.size(); ++j) {
      const double exact = truth.distance_ms[server_nodes_[j]];
      const DelayBounds bounds = envelope(node, server_nodes_[j]);
      if (exact == kUnreachable) {
        TACC_CHECK_INVARIANT(bounds.hi_ms == kUnreachable,
                             "finite upper bound for an unreachable server");
        continue;
      }
      const double slack = 1e-9 * (1.0 + exact);
      TACC_CHECK_INVARIANT(
          bounds.lo_ms <= exact + slack && exact <= bounds.hi_ms + slack,
          "envelope does not contain the exact delay: row " +
              std::to_string(row) + " server " + std::to_string(j));
    }
  }
}

void LandmarkOracle::on_rebuild() {
  // The engine rebuilt from scratch (out-of-band topology edits): the
  // incremental-repair premise is void, so rebuild the landmark trees too.
  // This is the recovery hatch, not the churn path — bench_m6 gates that it
  // never fires mid-run (stats().rebuilds == 0).
  ++stats_.rebuilds;
  bool landmarks_live = !landmark_nodes_.empty();
  for (const NodeId landmark : landmark_nodes_) {
    if (landmark >= net_->graph.node_count() ||
        net_->graph.node_released(landmark)) {
      landmarks_live = false;
      break;
    }
  }
  if (landmarks_live) {
    for (std::size_t k = 0; k < landmark_nodes_.size(); ++k) {
      landmark_trees_[k] =
          incr::DynamicSsspTree(net_->graph, landmark_nodes_[k]);
    }
  } else {
    select_landmarks();
  }
  store_.clear();
  std::fill(row_has_exact_.begin(), row_has_exact_.end(), 0);
}

}  // namespace tacc::topo::oracle
