#include "topology/oracle/rowstore.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/contracts.hpp"

namespace tacc::topo::oracle {

namespace {
constexpr std::uint16_t kInfCode = 65535;
constexpr double kMaxCode = 65534.0;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

QuantizedRowStore::QuantizedRowStore(std::size_t width,
                                     std::size_t hot_capacity,
                                     std::size_t cold_capacity)
    : width_(width),
      hot_capacity_(std::max<std::size_t>(1, hot_capacity)),
      cold_capacity_(std::max<std::size_t>(1, cold_capacity)) {}

void QuantizedRowStore::demote_lru_hot() {
  HotEntry victim = std::move(hot_.back());
  hot_index_.erase(victim.row);
  hot_.pop_back();

  if (cold_.size() >= cold_capacity_) {
    cold_index_.erase(cold_.back().row);
    cold_.pop_back();  // dropped; the oracle recomputes on the next touch
  }
  double max_finite = 0.0;
  for (const double v : victim.values) {
    if (v != kInf) max_finite = std::max(max_finite, v);
  }
  ColdEntry entry;
  entry.row = victim.row;
  entry.scale = max_finite > 0.0 ? max_finite / kMaxCode : 1.0;
  entry.codes.resize(victim.values.size());
  for (std::size_t j = 0; j < victim.values.size(); ++j) {
    const double v = victim.values[j];
    if (v == kInf) {
      entry.codes[j] = kInfCode;
    } else {
      // Round UP so decode never undercuts the stored value.
      const double code = std::ceil(v / entry.scale);
      entry.codes[j] =
          static_cast<std::uint16_t>(std::min(code, kMaxCode));
    }
  }
  cold_.push_front(std::move(entry));
  cold_index_[cold_.front().row] = cold_.begin();
}

const std::vector<double>& QuantizedRowStore::insert_hot(
    std::size_t row, std::vector<double> values) {
  while (hot_.size() >= hot_capacity_) demote_lru_hot();
  hot_.push_front(HotEntry{row, std::move(values)});
  hot_index_[row] = hot_.begin();
  return hot_.front().values;
}

const std::vector<double>& QuantizedRowStore::put(
    std::size_t row, std::span<const double> values) {
  erase(row);
  return insert_hot(row, std::vector<double>(values.begin(), values.end()));
}

const std::vector<double>* QuantizedRowStore::get(std::size_t row) {
  if (const auto hot = hot_index_.find(row); hot != hot_index_.end()) {
    hot_.splice(hot_.begin(), hot_, hot->second);  // touch: move to front
    return &hot_.front().values;
  }
  const auto cold = cold_index_.find(row);
  if (cold == cold_index_.end()) return nullptr;
  const auto entry_it = cold->second;
  decode_scratch_.resize(entry_it->codes.size());
  for (std::size_t j = 0; j < entry_it->codes.size(); ++j) {
    decode_scratch_[j] =
        entry_it->codes[j] == kInfCode
            ? kInf
            : static_cast<double>(entry_it->codes[j]) * entry_it->scale;
  }
  cold_index_.erase(cold);
  cold_.erase(entry_it);
  return &insert_hot(row, std::move(decode_scratch_));
}

bool QuantizedRowStore::contains(std::size_t row) const noexcept {
  return hot_index_.contains(row) || cold_index_.contains(row);
}

void QuantizedRowStore::erase(std::size_t row) {
  if (const auto hot = hot_index_.find(row); hot != hot_index_.end()) {
    hot_.erase(hot->second);
    hot_index_.erase(hot);
    return;
  }
  if (const auto cold = cold_index_.find(row); cold != cold_index_.end()) {
    cold_.erase(cold->second);
    cold_index_.erase(cold);
  }
}

void QuantizedRowStore::clear() {
  hot_.clear();
  cold_.clear();
  hot_index_.clear();
  cold_index_.clear();
}

std::size_t QuantizedRowStore::resident_bytes() const noexcept {
  std::size_t bytes = decode_scratch_.capacity() * sizeof(double);
  for (const HotEntry& entry : hot_) {
    bytes += sizeof(HotEntry) + entry.values.capacity() * sizeof(double);
  }
  for (const ColdEntry& entry : cold_) {
    bytes += sizeof(ColdEntry) + entry.codes.capacity() * sizeof(std::uint16_t);
  }
  bytes += hot_index_.size() *
           (sizeof(std::size_t) + sizeof(std::list<HotEntry>::iterator));
  bytes += cold_index_.size() *
           (sizeof(std::size_t) + sizeof(std::list<ColdEntry>::iterator));
  return bytes;
}

void QuantizedRowStore::check_invariants() const {
  TACC_CHECK_INVARIANT(hot_.size() <= hot_capacity_,
                       "hot tier past capacity");
  TACC_CHECK_INVARIANT(cold_.size() <= cold_capacity_,
                       "cold tier past capacity");
  TACC_CHECK_INVARIANT(hot_index_.size() == hot_.size() &&
                           cold_index_.size() == cold_.size(),
                       "tier index size out of sync with its list");
  for (auto it = hot_.begin(); it != hot_.end(); ++it) {
    const auto indexed = hot_index_.find(it->row);
    TACC_CHECK_INVARIANT(indexed != hot_index_.end() && indexed->second == it,
                         "hot row missing from the index: row " +
                             std::to_string(it->row));
    TACC_CHECK_INVARIANT(it->values.size() == width_,
                         "hot row has the wrong width: row " +
                             std::to_string(it->row));
    TACC_CHECK_INVARIANT(!cold_index_.contains(it->row),
                         "row resident in both tiers: row " +
                             std::to_string(it->row));
  }
  for (auto it = cold_.begin(); it != cold_.end(); ++it) {
    const auto indexed = cold_index_.find(it->row);
    TACC_CHECK_INVARIANT(indexed != cold_index_.end() && indexed->second == it,
                         "cold row missing from the index: row " +
                             std::to_string(it->row));
    TACC_CHECK_INVARIANT(it->codes.size() == width_,
                         "cold row has the wrong width: row " +
                             std::to_string(it->row));
    TACC_CHECK_INVARIANT(it->scale > 0.0 && std::isfinite(it->scale),
                         "cold row scale must be positive and finite: row " +
                             std::to_string(it->row));
  }
}

}  // namespace tacc::topo::oracle
