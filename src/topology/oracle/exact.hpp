// ExactOracle: the default DelayOracle backend.
//
// Uncompressed (the default), it is a pure pass-through to an owned
// DelayMatrixCache — every query, refresh count and fingerprint is
// bit-identical to driving the cache directly, which is what keeps
// `--oracle=exact` indistinguishable from pre-oracle builds.
//
// With config.compress set, rows instead live in a bounded
// QuantizedRowStore and are (re)filled lazily from the engine's trees on
// first touch: hot rows are exact, demoted rows are uint16-quantized
// (round-up, so served values never drop below the tree value), and rows
// evicted from the cold tier are recomputed on the next touch. refresh()
// then *invalidates* dirty rows rather than rewriting them. This mode is
// opt-in precisely because quantized demotion gives up bit-exactness.
#pragma once

#include <vector>

#include "topology/incremental/cache.hpp"
#include "topology/oracle/oracle.hpp"
#include "topology/oracle/rowstore.hpp"

namespace tacc::topo::oracle {

class ExactOracle final : public DelayOracle {
 public:
  /// The engine must outlive the oracle.
  explicit ExactOracle(incr::IncrementalDelayEngine& engine,
                       const OracleConfig& config = {});

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] std::size_t server_count() const override;

  void bind_row(std::size_t row, NodeId node) override;
  void unbind_row(std::size_t row) override;
  [[nodiscard]] NodeId row_node(std::size_t row) const override;
  [[nodiscard]] std::size_t row_count() const override;
  [[nodiscard]] std::size_t bound_count() const override;

  [[nodiscard]] const std::vector<double>& row(
      std::size_t row) const override;
  [[nodiscard]] DelayBounds bounds_ms(std::size_t row,
                                      std::size_t server) const override;

  std::size_t refresh() override;
  void refresh_all() override;
  [[nodiscard]] std::uint64_t epoch() const override;
  [[nodiscard]] std::uint64_t row_epoch(std::size_t row) const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] std::uint64_t rows_refreshed() const override;
  [[nodiscard]] std::uint64_t rows_saved() const override;

  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] const OracleStats& stats() const override { return stats_; }
  [[nodiscard]] DelayMatrix materialize() const override;
  void check_invariants() const override;

 private:
  /// Resident (or freshly filled) values for a bound row (compressed mode).
  const std::vector<double>& fetch_row(std::size_t row) const;

  incr::IncrementalDelayEngine* engine_;
  bool compress_;
  // Uncompressed mode: the cache IS the implementation.
  mutable incr::DelayMatrixCache cache_;
  // Compressed mode: bindings + bounded store, filled lazily (mutable: the
  // lazy fill stamps epochs on logically-const reads; externally
  // synchronized, see oracle.hpp).
  mutable RowBindings book_;
  mutable QuantizedRowStore store_;
  mutable std::vector<double> fill_scratch_;
  std::vector<NodeId> drain_scratch_;
  std::uint64_t rows_refreshed_ = 0;
  std::uint64_t rows_saved_ = 0;
  mutable OracleStats stats_;
};

}  // namespace tacc::topo::oracle
