#include "topology/oracle/exact.hpp"

#include <string>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace tacc::topo::oracle {

ExactOracle::ExactOracle(incr::IncrementalDelayEngine& engine,
                         const OracleConfig& config)
    : engine_(&engine),
      compress_(config.compress),
      cache_(engine),
      store_(engine.server_count(), config.hot_rows,
             config.hot_rows * kColdPerHot) {}

std::string_view ExactOracle::name() const noexcept {
  return compress_ ? "exact+compress" : "exact";
}

std::size_t ExactOracle::server_count() const {
  return engine_->server_count();
}

void ExactOracle::bind_row(std::size_t row, NodeId node) {
  if (!compress_) {
    cache_.bind_row(row, node);
    return;
  }
  book_.bind(row, node);
  store_.erase(row);  // filled lazily on the next touch
}

void ExactOracle::unbind_row(std::size_t row) {
  if (!compress_) {
    cache_.unbind_row(row);
    return;
  }
  if (book_.unbind(row)) store_.erase(row);
}

NodeId ExactOracle::row_node(std::size_t row) const {
  return compress_ ? book_.row_node(row) : cache_.row_node(row);
}

std::size_t ExactOracle::row_count() const {
  return compress_ ? book_.nodes.size() : cache_.row_count();
}

std::size_t ExactOracle::bound_count() const {
  return compress_ ? book_.bound : cache_.bound_count();
}

const std::vector<double>& ExactOracle::fetch_row(std::size_t row) const {
  if (const std::vector<double>* resident = store_.get(row)) {
    return *resident;
  }
  const NodeId node = book_.nodes.at(row);
  TACC_REQUIRE(node != kInvalidNode, "reading an unbound oracle row");
  fill_scratch_.resize(engine_->server_count());
  for (std::size_t j = 0; j < fill_scratch_.size(); ++j) {
    fill_scratch_[j] = engine_->delay_ms(j, node);
  }
  book_.epochs[row] = engine_->epoch();
  ++stats_.row_fills;
  return store_.put(row, fill_scratch_);
}

const std::vector<double>& ExactOracle::row(std::size_t row) const {
  stats_.queries += engine_->server_count();
  if (!compress_) return cache_.row(row);
  return fetch_row(row);
}

DelayBounds ExactOracle::bounds_ms(std::size_t row, std::size_t server) const {
  // Exact backend: the envelope is the tree value itself, which also keeps
  // bounds certified even while a row awaits refresh().
  const NodeId node = compress_ ? book_.row_node(row) : cache_.row_node(row);
  const double value = engine_->delay_ms(server, node);
  return {value, value, true};
}

std::size_t ExactOracle::refresh() {
  if (!compress_) return cache_.refresh();
  drain_scratch_.clear();
  engine_->drain_dirty(drain_scratch_);
  std::size_t invalidated = 0;
  for (const NodeId node : drain_scratch_) {
    const std::size_t row = book_.row_of(node);
    if (row == RowBindings::kUnbound) continue;
    store_.erase(row);
    ++invalidated;
  }
  rows_refreshed_ += invalidated;
  rows_saved_ += book_.bound - invalidated;
  return invalidated;
}

void ExactOracle::refresh_all() {
  if (!compress_) {
    cache_.refresh_all();
    return;
  }
  drain_scratch_.clear();
  engine_->drain_dirty(drain_scratch_);
  store_.clear();
  rows_refreshed_ += book_.bound;
}

std::uint64_t ExactOracle::epoch() const { return engine_->epoch(); }

std::uint64_t ExactOracle::row_epoch(std::size_t row) const {
  return compress_ ? book_.epochs.at(row) : cache_.row_epoch(row);
}

std::uint64_t ExactOracle::fingerprint() const {
  if (!compress_) return cache_.fingerprint();
  // Lazy rows are never all materialized, so digest the bindings + epoch
  // (see the fingerprint contract in oracle.hpp).
  std::uint64_t state = 0x7ACC5EEDULL;
  std::uint64_t digest = 0;
  const auto mix = [&state, &digest](std::uint64_t value) {
    state ^= value;
    digest = util::splitmix64(state);
  };
  mix(0xEC0117ULL);  // backend tag
  mix(engine_->epoch());
  mix(static_cast<std::uint64_t>(book_.bound));
  for (std::size_t i = 0; i < book_.nodes.size(); ++i) {
    if (book_.nodes[i] == kInvalidNode) continue;
    mix(static_cast<std::uint64_t>(i));
    mix(static_cast<std::uint64_t>(book_.nodes[i]));
  }
  return digest;
}

std::uint64_t ExactOracle::rows_refreshed() const {
  return compress_ ? rows_refreshed_ : cache_.rows_refreshed();
}

std::uint64_t ExactOracle::rows_saved() const {
  return compress_ ? rows_saved_ : cache_.rows_saved();
}

std::size_t ExactOracle::resident_bytes() const {
  if (compress_) {
    return store_.resident_bytes() +
           book_.nodes.capacity() * sizeof(NodeId) +
           book_.epochs.capacity() * sizeof(std::uint64_t) +
           book_.node_to_row.capacity() * sizeof(std::size_t);
  }
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < cache_.row_count(); ++i) {
    bytes += sizeof(std::vector<double>);
    if (cache_.row_node(i) != kInvalidNode) {
      bytes += cache_.row(i).capacity() * sizeof(double);
    }
  }
  bytes += cache_.row_count() * (sizeof(NodeId) + sizeof(std::uint64_t));
  return bytes;
}

DelayMatrix ExactOracle::materialize() const {
  if (!compress_) return cache_.materialize();
  DelayMatrix matrix(book_.nodes.size(), engine_->server_count(),
                     kUnreachable);
  for (std::size_t i = 0; i < book_.nodes.size(); ++i) {
    if (book_.nodes[i] == kInvalidNode) continue;
    const std::vector<double>& values = fetch_row(i);
    for (std::size_t j = 0; j < values.size(); ++j) {
      matrix.set(i, j, values[j]);
    }
  }
  return matrix;
}

void ExactOracle::check_invariants() const {
  if (!compress_) {
    cache_.check_invariants();
    return;
  }
  book_.check_invariants();
  store_.check_invariants();
  for (std::size_t row = 0; row < book_.nodes.size(); ++row) {
    TACC_CHECK_INVARIANT(
        book_.nodes[row] != kInvalidNode || !store_.contains(row),
        "unbound row still resident in the store: row " + std::to_string(row));
    TACC_CHECK_INVARIANT(book_.epochs[row] <= engine_->epoch(),
                         "row stamped with an epoch from the future: row " +
                             std::to_string(row));
  }
}

}  // namespace tacc::topo::oracle
