#include "topology/oracle/oracle.hpp"

#include <string>

#include "topology/oracle/exact.hpp"
#include "topology/oracle/landmark.hpp"
#include "util/contracts.hpp"

namespace tacc::topo::oracle {

DelayOracle::~DelayOracle() = default;

bool RowBindings::bind(std::size_t row, NodeId node) {
  if (row >= nodes.size()) {
    nodes.resize(row + 1, kInvalidNode);
    epochs.resize(row + 1, 0);
  }
  if (node >= node_to_row.size()) node_to_row.resize(node + 1, kUnbound);
  const bool rebind = nodes[row] != kInvalidNode;
  if (rebind) {
    node_to_row[nodes[row]] = kUnbound;
  } else {
    ++bound;
  }
  nodes[row] = node;
  node_to_row[node] = row;
  return rebind;
}

bool RowBindings::unbind(std::size_t row) {
  if (row >= nodes.size() || nodes[row] == kInvalidNode) return false;
  node_to_row[nodes[row]] = kUnbound;
  nodes[row] = kInvalidNode;
  --bound;
  return true;
}

void RowBindings::check_invariants() const {
  TACC_CHECK_INVARIANT(epochs.size() == nodes.size(),
                       "row/epoch arrays must stay parallel");
  std::size_t bound_seen = 0;
  for (std::size_t row = 0; row < nodes.size(); ++row) {
    const NodeId node = nodes[row];
    if (node == kInvalidNode) continue;
    ++bound_seen;
    TACC_CHECK_INVARIANT(node < node_to_row.size() &&
                             node_to_row[node] == row,
                         "bound row missing from the node->row index: row " +
                             std::to_string(row));
  }
  TACC_CHECK_INVARIANT(bound_seen == bound,
                       "bound-row count out of sync with bindings");
  for (std::size_t node = 0; node < node_to_row.size(); ++node) {
    const std::size_t row = node_to_row[node];
    if (row == kUnbound) continue;
    TACC_CHECK_INVARIANT(row < nodes.size() &&
                             nodes[row] == static_cast<NodeId>(node),
                         "node->row index points at a row bound elsewhere: "
                         "node " +
                             std::to_string(node));
  }
}

double DelayOracle::delay_ms(std::size_t row_index, std::size_t server) const {
  return row(row_index)[server];
}

std::size_t width_bucket(double relative_width) noexcept {
  constexpr std::array<double, 7> kEdges = {1e-3, 3e-3, 1e-2, 3e-2,
                                            1e-1, 3e-1, 1.0};
  for (std::size_t b = 0; b < kEdges.size(); ++b) {
    if (relative_width < kEdges[b]) return b;
  }
  return kEdges.size();
}

std::unique_ptr<DelayOracle> make_oracle(
    const OracleConfig& config, incr::IncrementalDelayEngine& engine) {
  if (config.backend == OracleBackend::kLandmark) {
    return std::make_unique<LandmarkOracle>(engine, config);
  }
  return std::make_unique<ExactOracle>(engine, config);
}

}  // namespace tacc::topo::oracle
