// QuantizedRowStore: two-tier bounded residency for delay rows.
//
// The hot tier keeps the H most recently touched rows as exact doubles; on
// eviction a row is demoted to the cold tier as uint16 codes against a
// per-row scale (round-UP quantization, so a decoded value never drops below
// the stored one — an upper-bound estimate stays an upper bound). The cold
// tier is itself LRU-bounded; rows evicted from it are simply dropped and
// the owning oracle recomputes them on the next touch. Residency is
// therefore O(hot·M·8 + cold·M·2) bytes regardless of how many rows exist —
// the property the bench_m6 memory gate measures.
//
// Quantization contract: for a stored value v with row scale s =
// max_finite(row)/65534, the decoded value d satisfies v <= d <= v + s.
// kUnreachable round-trips exactly (code 65535).
//
// Thread safety: none. The LRU lists mutate on every touch — including
// logically-const lookups — so the store inherits the owning oracle's
// external serialization (the session cluster mutex in the serving layer).
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

namespace tacc::topo::oracle {

/// Cold-tier rows per hot row when a backend sizes its store from
/// OracleConfig::hot_rows (cold rows cost 4x less than hot ones).
inline constexpr std::size_t kColdPerHot = 32;

class QuantizedRowStore {
 public:
  /// `width` values per row; `hot_capacity`/`cold_capacity` rows per tier
  /// (each at least 1).
  QuantizedRowStore(std::size_t width, std::size_t hot_capacity,
                    std::size_t cold_capacity);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  /// Inserts (or overwrites) `row` in the hot tier and returns the resident
  /// copy. The reference stays valid until `row` is demoted by later put()/
  /// get() traffic — with hot capacity H, at least H-1 distinct other rows
  /// must be touched first.
  const std::vector<double>& put(std::size_t row,
                                 std::span<const double> values);

  /// Promotes `row` to the hot tier (decoding if cold) and returns the
  /// resident copy; nullptr if the row is not resident in either tier.
  [[nodiscard]] const std::vector<double>* get(std::size_t row);

  [[nodiscard]] bool contains(std::size_t row) const noexcept;
  /// Drops `row` from whichever tier holds it (no-op if absent).
  void erase(std::size_t row);
  /// Drops every resident row.
  void clear();

  [[nodiscard]] std::size_t hot_size() const noexcept { return hot_.size(); }
  [[nodiscard]] std::size_t cold_size() const noexcept { return cold_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return hot_.size() + cold_.size();
  }

  /// Bytes held by resident rows + index structures (capacity-based).
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

  /// Deep validation via the contracts failure handler: index maps are the
  /// exact inverse of the tier lists, capacities are respected, row widths
  /// match, and cold scales are non-negative and finite.
  void check_invariants() const;

 private:
  struct HotEntry {
    std::size_t row;
    std::vector<double> values;
  };
  struct ColdEntry {
    std::size_t row;
    double scale;
    std::vector<std::uint16_t> codes;
  };

  /// Moves the LRU hot row into the cold tier (quantizing), evicting the
  /// LRU cold row if the cold tier is full.
  void demote_lru_hot();
  const std::vector<double>& insert_hot(std::size_t row,
                                        std::vector<double> values);

  std::size_t width_;
  std::size_t hot_capacity_;
  std::size_t cold_capacity_;
  // Front = most recently used, back = LRU victim.
  std::list<HotEntry> hot_;
  std::list<ColdEntry> cold_;
  std::unordered_map<std::size_t, std::list<HotEntry>::iterator> hot_index_;
  std::unordered_map<std::size_t, std::list<ColdEntry>::iterator> cold_index_;
  std::vector<double> decode_scratch_;
};

}  // namespace tacc::topo::oracle
