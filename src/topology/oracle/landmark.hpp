// LandmarkOracle: landmark/ALT delay estimation with certified envelopes.
// Thread safety: none (the row store mutates on const reads) — externally
// serialized by the owner, i.e. the session cluster mutex in the serving
// layer; see oracle.hpp.
//
// k landmarks are chosen over the ROUTER nodes (stable across device churn)
// by seed-deterministic farthest-point sampling: the first landmark is drawn
// from util::Rng(seed), each next one maximizes its shortest-path distance
// to the chosen set (unreachable first, lowest node id breaking ties). Each
// landmark owns a DynamicSsspTree, repaired incrementally per link mutation
// — never rebuilt mid-run (OracleStats::rebuilds, gated == 0 by bench_m6).
//
// Queries use the classic ALT triangle bounds for an undirected graph:
//     lo = max_L |d(L,a) - d(L,s)|      hi = min_L d(L,a) + d(L,s)
// which bracket the true delay whenever the landmark vectors are current.
// If exactly one of d(L,a), d(L,s) is infinite, a and s are in different
// components and the oracle certifies unreachability. An envelope is served
// (value = hi) when hi <= lo·(1+eps) + slack, so a served entry e satisfies
//     exact <= e <= (1+eps)·exact + slack;
// looser envelopes FALL BACK to an exact value: an O(1) read from the
// engine's server tree when attached, or one Dijkstra from the device node
// (filling the whole row) when standalone.
//
// Staleness/invalidation (the dirty-set contract):
//  - Attached (inside a DynamicCluster): the engine's dirty set is the
//    oracle's invalidation source — a bound-served value stays certified
//    while the node's true distances are unchanged, and any change lands
//    the node in the dirty set. Landmark trees follow the engine's mutation
//    funnel via MutationListener.
//  - Standalone (no per-server trees; the million-device mode): callers
//    mirror each graph mutation through apply_mutation(). A row goes stale
//    only if its node's landmark vector moved, if any SERVER's landmark
//    vector moved (every row has an entry against that server), or if the
//    row holds exact-fallback entries (exact values carry no envelope, so
//    they are conservatively re-dirtied on every mutation). refresh()
//    drops exactly the resident rows in that set; everything else keeps
//    serving certified values.
//
// Rows live in a bounded QuantizedRowStore and are computed lazily on first
// touch, so residency is O(landmarks·V + store capacity), not O(N·M) — the
// bench_m6 memory gate.
#pragma once

#include <vector>

#include "topology/oracle/oracle.hpp"
#include "topology/oracle/rowstore.hpp"
#include "topology/shortest_paths.hpp"

namespace tacc::topo::oracle {

class LandmarkOracle final : public DelayOracle, private incr::MutationListener {
 public:
  /// Attached mode: registers as a mutation listener on `engine` (which
  /// must outlive the oracle) and uses its trees for exact fallbacks.
  LandmarkOracle(incr::IncrementalDelayEngine& engine,
                 const OracleConfig& config);
  /// Standalone mode: no per-server trees — `net` must outlive the oracle
  /// and every mutation must be mirrored through apply_mutation().
  LandmarkOracle(const NetworkTopology& net, const OracleConfig& config);
  ~LandmarkOracle() override;

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] std::size_t server_count() const override {
    return server_nodes_.size();
  }

  void bind_row(std::size_t row, NodeId node) override;
  void unbind_row(std::size_t row) override;
  [[nodiscard]] NodeId row_node(std::size_t row) const override {
    return book_.row_node(row);
  }
  [[nodiscard]] std::size_t row_count() const override {
    return book_.nodes.size();
  }
  [[nodiscard]] std::size_t bound_count() const override {
    return book_.bound;
  }

  [[nodiscard]] const std::vector<double>& row(
      std::size_t row) const override;
  [[nodiscard]] double delay_ms(std::size_t row,
                                std::size_t server) const override;
  [[nodiscard]] DelayBounds bounds_ms(std::size_t row,
                                      std::size_t server) const override;

  std::size_t refresh() override;
  void refresh_all() override;
  [[nodiscard]] std::uint64_t epoch() const override;
  [[nodiscard]] std::uint64_t row_epoch(std::size_t row) const override {
    return book_.epochs.at(row);
  }
  [[nodiscard]] std::uint64_t fingerprint() const override;
  [[nodiscard]] std::uint64_t rows_refreshed() const override {
    return rows_refreshed_;
  }
  [[nodiscard]] std::uint64_t rows_saved() const override {
    return rows_saved_;
  }

  [[nodiscard]] std::size_t resident_bytes() const override;
  [[nodiscard]] const OracleStats& stats() const override { return stats_; }
  [[nodiscard]] DelayMatrix materialize() const override;
  /// Deep validation: bindings/store/pending bookkeeping, plus landmark
  /// coherence — one epoch-rotated landmark tree compared bit-for-bit
  /// against a fresh Dijkstra, and one sampled bound row checked for
  /// envelope containment of the true distances. Cold path (two Dijkstras).
  void check_invariants() const override;

  /// Standalone mode: the graph ALREADY reflects the mutation (engine
  /// apply_to_trees semantics; kind 0 added, 1 removed, 2 reweighted).
  /// Repairs every landmark tree incrementally and queues invalidations
  /// for the next refresh(). Must not be called in attached mode (the
  /// engine's listener hook feeds mutations there).
  void apply_mutation(int kind, NodeId u, NodeId v, double old_ms,
                      double new_ms);

  [[nodiscard]] const std::vector<NodeId>& landmark_nodes() const noexcept {
    return landmark_nodes_;
  }

 private:
  void on_mutation(int kind, NodeId u, NodeId v, double old_ms,
                   double new_ms) override;
  void on_rebuild() override;

  /// Farthest-point sampling over routers + one Dijkstra tree per landmark.
  void select_landmarks();
  /// Incremental repair of every landmark tree; in standalone mode also
  /// queues row invalidations derived from the changed-node sets.
  void repair_landmarks(int kind, NodeId u, NodeId v, double old_ms,
                        double new_ms);
  void mark_pending(std::size_t row);
  [[nodiscard]] bool accept(const DelayBounds& bounds) const noexcept;
  [[nodiscard]] DelayBounds envelope(NodeId node, NodeId server_node) const;
  /// Bounds + fallbacks for every server; records stats and whether the
  /// row holds exact-fallback entries.
  void compute_row(std::size_t row, NodeId node,
                   std::vector<double>& out) const;
  const std::vector<double>& fetch_row(std::size_t row) const;

  const NetworkTopology* net_;
  incr::IncrementalDelayEngine* engine_;  ///< nullptr in standalone mode
  OracleConfig config_;
  std::vector<NodeId> server_nodes_;
  std::vector<std::uint8_t> is_server_node_;  ///< by node id
  std::vector<NodeId> landmark_nodes_;
  std::vector<incr::DynamicSsspTree> landmark_trees_;

  // Lazy row cache (mutable: logically-const fills; externally
  // synchronized — see oracle.hpp).
  mutable RowBindings book_;
  mutable QuantizedRowStore store_;
  mutable std::vector<double> fill_scratch_;
  mutable std::vector<std::uint8_t> row_has_exact_;  ///< per row

  // Standalone invalidation queue (refresh() drains it).
  std::vector<std::size_t> pending_rows_;
  std::vector<std::uint8_t> row_pending_;  ///< per row: already queued?
  bool all_pending_ = false;  ///< a server's landmark vector moved

  std::vector<NodeId> changed_scratch_;
  std::vector<NodeId> drain_scratch_;
  std::uint64_t own_epoch_ = 0;  ///< standalone epoch (attached: engine's)
  std::uint64_t rows_refreshed_ = 0;
  std::uint64_t rows_saved_ = 0;
  mutable OracleStats stats_;
};

}  // namespace tacc::topo::oracle
