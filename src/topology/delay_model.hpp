// Maps physical link properties (length, tier) to edge latencies/bandwidths.
//
// Distances are kilometres; latencies are milliseconds. Defaults model a
// metropolitan edge deployment: fibre backbone between routers, wireless
// access hop between a device and its attachment router.
#pragma once

#include "topology/graph.hpp"

namespace tacc::topo {

struct LinkDelayModel {
  /// Effective one-way latency per km. Raw fibre propagation is ~0.005
  /// ms/km, but metro edge links route indirectly and carry serialization
  /// and shallow-queue latency roughly proportional to span; 0.25 ms/km
  /// reproduces the 1–10 ms one-way metro link latencies reported in edge
  /// measurement studies, and — crucially for this paper — makes delay
  /// *distance- and hop-dependent*, so topology awareness has signal.
  double propagation_ms_per_km = 0.25;
  /// Store-and-forward / switching cost added per link traversal.
  double per_hop_forwarding_ms = 0.5;
  /// Extra latency on wireless access links (MAC contention, radio).
  double wireless_access_extra_ms = 2.0;
  double backbone_bandwidth_mbps = 1000.0;
  double access_bandwidth_mbps = 50.0;

  [[nodiscard]] EdgeProps backbone_link(double distance_km) const noexcept {
    return {per_hop_forwarding_ms + propagation_ms_per_km * distance_km,
            backbone_bandwidth_mbps};
  }

  [[nodiscard]] EdgeProps access_link(double distance_km) const noexcept {
    return {per_hop_forwarding_ms + wireless_access_extra_ms +
                propagation_ms_per_km * distance_km,
            access_bandwidth_mbps};
  }
};

}  // namespace tacc::topo
