#include "topology/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace tacc::topo {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  released_.push_back(false);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

NodeId Graph::acquire_node() {
  if (free_list_.empty()) return add_node();
  const NodeId node = free_list_.back();
  free_list_.pop_back();
  released_[node] = false;
  return node;
}

void Graph::release_node(NodeId node) {
  if (node >= node_count()) {
    throw std::out_of_range("Graph::release_node: node id out of range");
  }
  if (released_[node]) {
    throw std::invalid_argument("Graph::release_node: already released");
  }
  // Each entry in our list is one undirected edge; drop its mirror entry at
  // the other endpoint (one mirror per entry, so parallel edges stay paired).
  for (const Adjacency& adj : adjacency_[node]) {
    auto& list = adjacency_[adj.to];
    bool erased = false;
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->to == node) {
        list.erase(it);
        erased = true;
        break;
      }
    }
    TACC_ASSERT(erased, "released node's edge had no mirror entry");
    --edges_;
  }
  adjacency_[node].clear();
  adjacency_[node].shrink_to_fit();
  released_[node] = true;
  free_list_.push_back(node);
}

void Graph::add_edge(NodeId u, NodeId v, EdgeProps props) {
  if (u >= node_count() || v >= node_count()) {
    throw std::out_of_range("Graph::add_edge: node id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::add_edge: self-loops not supported");
  }
  if (released_[u] || released_[v]) {
    throw std::invalid_argument("Graph::add_edge: endpoint is released");
  }
  if (!(props.latency_ms > 0.0)) {
    throw std::invalid_argument("Graph::add_edge: latency must be positive");
  }
  adjacency_[u].push_back({v, props});
  adjacency_[v].push_back({u, props});
  ++edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& list = adjacency_.at(u);
  return std::any_of(list.begin(), list.end(),
                     [v](const Adjacency& a) { return a.to == v; });
}

const EdgeProps* Graph::edge_props(NodeId u, NodeId v) const {
  for (const Adjacency& adj : adjacency_.at(u)) {
    if (adj.to == v) return &adj.props;
  }
  return nullptr;
}

bool Graph::set_edge_latency(NodeId u, NodeId v, double latency_ms) {
  if (!(latency_ms > 0.0)) {
    throw std::invalid_argument(
        "Graph::set_edge_latency: latency must be positive");
  }
  if (u >= node_count() || v >= node_count()) return false;
  // Mirror entries are kept in matching insertion order (add_edge appends to
  // both lists; remove_edge/release_node erase the first match from both), so
  // rewriting the first match on each side updates one undirected edge.
  const auto rewrite_one = [this, latency_ms](NodeId from, NodeId to) {
    for (Adjacency& adj : adjacency_[from]) {
      if (adj.to == to) {
        adj.props.latency_ms = latency_ms;
        return true;
      }
    }
    return false;
  };
  if (!rewrite_one(u, v)) return false;
  rewrite_one(v, u);
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= node_count() || v >= node_count()) return false;
  const auto erase_one = [this](NodeId from, NodeId to) {
    auto& list = adjacency_[from];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->to == to) {
        list.erase(it);
        return true;
      }
    }
    return false;
  };
  if (!erase_one(u, v)) return false;
  erase_one(v, u);
  --edges_;
  return true;
}

void Graph::check_invariants() const {
  TACC_CHECK_INVARIANT(released_.size() == adjacency_.size(),
                       "released bitmap must cover every node");
  TACC_CHECK_INVARIANT(free_list_.size() <= adjacency_.size(),
                       "free list larger than the node table");

  // Free list vs released bitmap: same set, no duplicates, empty adjacency.
  std::vector<bool> on_free_list(adjacency_.size(), false);
  for (const NodeId node : free_list_) {
    TACC_CHECK_INVARIANT(node < adjacency_.size(),
                         "free-list id out of range: " + std::to_string(node));
    TACC_CHECK_INVARIANT(!on_free_list[node],
                         "node on the free list twice: " +
                             std::to_string(node));
    on_free_list[node] = true;
    TACC_CHECK_INVARIANT(released_[node],
                         "free-list node not marked released: " +
                             std::to_string(node));
    TACC_CHECK_INVARIANT(adjacency_[node].empty(),
                         "released node still has edges: " +
                             std::to_string(node));
  }
  for (NodeId node = 0; node < adjacency_.size(); ++node) {
    TACC_CHECK_INVARIANT(released_[node] == on_free_list[node],
                         "released node missing from the free list: " +
                             std::to_string(node));
  }

  // Adjacency symmetry: mirror entries are kept in matching insertion order
  // (see set_edge_latency), so the k-th u->v entry must pair with the k-th
  // v->u entry, carrying identical properties.
  std::size_t directed_entries = 0;
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    std::size_t own_rank = 0;  // rank of each u->v among u's entries to v
    for (const Adjacency& adj : adjacency_[u]) {
      ++directed_entries;
      const NodeId v = adj.to;
      TACC_CHECK_INVARIANT(v < adjacency_.size(),
                           "edge endpoint out of range");
      TACC_CHECK_INVARIANT(v != u, "self-loop at node " + std::to_string(u));
      TACC_CHECK_INVARIANT(!released_[u] && !released_[v],
                           "edge touches a released node");
      TACC_CHECK_INVARIANT(adj.props.latency_ms > 0.0,
                           "non-positive edge latency");
      // Rank of this u->v entry among u's edges to v.
      std::size_t rank = 0;
      for (const Adjacency& prior : adjacency_[u]) {
        if (&prior == &adj) break;
        if (prior.to == v) ++rank;
      }
      own_rank = rank;
      // Find the mirror of the same rank.
      const Adjacency* mirror = nullptr;
      std::size_t seen = 0;
      for (const Adjacency& back : adjacency_[v]) {
        if (back.to != u) continue;
        if (seen == own_rank) {
          mirror = &back;
          break;
        }
        ++seen;
      }
      TACC_CHECK_INVARIANT(mirror != nullptr,
                           "asymmetric adjacency: " + std::to_string(u) +
                               "->" + std::to_string(v) + " has no mirror");
      TACC_CHECK_INVARIANT(
          mirror->props.latency_ms == adj.props.latency_ms &&
              mirror->props.bandwidth_mbps == adj.props.bandwidth_mbps,
          "mirror entries disagree on edge properties");
    }
  }
  TACC_CHECK_INVARIANT(directed_entries == 2 * edges_,
                       "edge count out of sync with adjacency storage");
}

double Graph::total_latency() const noexcept {
  double total = 0.0;
  for (const auto& list : adjacency_) {
    for (const auto& adj : list) total += adj.props.latency_ms;
  }
  return total / 2.0;  // each undirected edge counted from both endpoints
}

}  // namespace tacc::topo
