#include "topology/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace tacc::topo {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  released_.push_back(false);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

NodeId Graph::acquire_node() {
  if (free_list_.empty()) return add_node();
  const NodeId node = free_list_.back();
  free_list_.pop_back();
  released_[node] = false;
  return node;
}

void Graph::release_node(NodeId node) {
  if (node >= node_count()) {
    throw std::out_of_range("Graph::release_node: node id out of range");
  }
  if (released_[node]) {
    throw std::invalid_argument("Graph::release_node: already released");
  }
  // Each entry in our list is one undirected edge; drop its mirror entry at
  // the other endpoint (one mirror per entry, so parallel edges stay paired).
  for (const Adjacency& adj : adjacency_[node]) {
    auto& list = adjacency_[adj.to];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->to == node) {
        list.erase(it);
        break;
      }
    }
    --edges_;
  }
  adjacency_[node].clear();
  adjacency_[node].shrink_to_fit();
  released_[node] = true;
  free_list_.push_back(node);
}

void Graph::add_edge(NodeId u, NodeId v, EdgeProps props) {
  if (u >= node_count() || v >= node_count()) {
    throw std::out_of_range("Graph::add_edge: node id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::add_edge: self-loops not supported");
  }
  if (released_[u] || released_[v]) {
    throw std::invalid_argument("Graph::add_edge: endpoint is released");
  }
  if (!(props.latency_ms > 0.0)) {
    throw std::invalid_argument("Graph::add_edge: latency must be positive");
  }
  adjacency_[u].push_back({v, props});
  adjacency_[v].push_back({u, props});
  ++edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& list = adjacency_.at(u);
  return std::any_of(list.begin(), list.end(),
                     [v](const Adjacency& a) { return a.to == v; });
}

const EdgeProps* Graph::edge_props(NodeId u, NodeId v) const {
  for (const Adjacency& adj : adjacency_.at(u)) {
    if (adj.to == v) return &adj.props;
  }
  return nullptr;
}

bool Graph::set_edge_latency(NodeId u, NodeId v, double latency_ms) {
  if (!(latency_ms > 0.0)) {
    throw std::invalid_argument(
        "Graph::set_edge_latency: latency must be positive");
  }
  if (u >= node_count() || v >= node_count()) return false;
  // Mirror entries are kept in matching insertion order (add_edge appends to
  // both lists; remove_edge/release_node erase the first match from both), so
  // rewriting the first match on each side updates one undirected edge.
  const auto rewrite_one = [this, latency_ms](NodeId from, NodeId to) {
    for (Adjacency& adj : adjacency_[from]) {
      if (adj.to == to) {
        adj.props.latency_ms = latency_ms;
        return true;
      }
    }
    return false;
  };
  if (!rewrite_one(u, v)) return false;
  rewrite_one(v, u);
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= node_count() || v >= node_count()) return false;
  const auto erase_one = [this](NodeId from, NodeId to) {
    auto& list = adjacency_[from];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->to == to) {
        list.erase(it);
        return true;
      }
    }
    return false;
  };
  if (!erase_one(u, v)) return false;
  erase_one(v, u);
  --edges_;
  return true;
}

double Graph::total_latency() const noexcept {
  double total = 0.0;
  for (const auto& list : adjacency_) {
    for (const auto& adj : list) total += adj.props.latency_ms;
  }
  return total / 2.0;  // each undirected edge counted from both endpoints
}

}  // namespace tacc::topo
