#include "topology/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "runtime/thread_pool.hpp"

namespace tacc::topo {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  if (target >= distance_ms.size() || distance_ms[target] == kUnreachable) {
    return {};
  }
  std::vector<NodeId> path;
  for (NodeId at = target; at != kInvalidNode; at = parent[at]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  ShortestPathTree tree;
  tree.distance_ms.assign(n, kUnreachable);
  tree.parent.assign(n, kInvalidNode);
  if (source >= n) return tree;

  using HeapEntry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  tree.distance_ms[source] = 0.0;
  heap.push({0.0, source});

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > tree.distance_ms[node]) continue;  // stale entry
    for (const Adjacency& adj : graph.neighbors(node)) {
      const double candidate = dist + adj.props.latency_ms;
      if (candidate < tree.distance_ms[adj.to]) {
        tree.distance_ms[adj.to] = candidate;
        tree.parent[adj.to] = node;
        heap.push({candidate, adj.to});
      }
    }
  }
  return tree;
}

std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> hops(n, kUnreachableHops);
  if (source >= n) return hops;
  std::queue<NodeId> frontier;
  hops[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : graph.neighbors(node)) {
      if (hops[adj.to] == kUnreachableHops) {
        hops[adj.to] = hops[node] + 1;
        frontier.push(adj.to);
      }
    }
  }
  return hops;
}

std::vector<std::vector<double>> all_pairs_distances(const Graph& graph,
                                                     std::size_t threads) {
  // Delegate to the fan-out runner so there is exactly one parallel
  // Dijkstra loop in the library.
  std::vector<NodeId> sources(graph.node_count());
  for (NodeId s = 0; s < sources.size(); ++s) sources[s] = s;
  std::vector<ShortestPathTree> trees =
      dijkstra_fan_out(graph, sources, threads);
  std::vector<std::vector<double>> result(trees.size());
  for (std::size_t s = 0; s < trees.size(); ++s) {
    result[s] = std::move(trees[s].distance_ms);
  }
  return result;
}

std::vector<ShortestPathTree> dijkstra_fan_out(const Graph& graph,
                                               std::span<const NodeId> sources,
                                               std::size_t threads) {
  std::vector<ShortestPathTree> result(sources.size());
  // Each task writes only its own slot, so any schedule yields the same
  // trees.
  runtime::parallel_for(sources.size(), threads, [&](std::size_t k) {
    result[k] = dijkstra(graph, sources[k]);
  });
  return result;
}

std::vector<std::vector<double>> floyd_warshall(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::vector<double>> dist(n,
                                        std::vector<double>(n, kUnreachable));
  for (NodeId u = 0; u < n; ++u) {
    dist[u][u] = 0.0;
    for (const Adjacency& adj : graph.neighbors(u)) {
      dist[u][adj.to] = std::min(dist[u][adj.to], adj.props.latency_ms);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double through = dist[i][k] + dist[k][j];
        if (through < dist[i][j]) dist[i][j] = through;
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  const auto hops = bfs_hops(graph, 0);
  return std::none_of(hops.begin(), hops.end(), [](std::uint32_t h) {
    return h == kUnreachableHops;
  });
}

std::vector<std::uint32_t> connected_components(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> label(n, kUnreachableHops);
  std::uint32_t next_label = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnreachableHops) continue;
    std::queue<NodeId> frontier;
    label[start] = next_label;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId node = frontier.front();
      frontier.pop();
      for (const Adjacency& adj : graph.neighbors(node)) {
        if (label[adj.to] == kUnreachableHops) {
          label[adj.to] = next_label;
          frontier.push(adj.to);
        }
      }
    }
    ++next_label;
  }
  return label;
}

}  // namespace tacc::topo
