#include <numbers>
#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "topology/shortest_paths.hpp"

namespace tacc::topo {

namespace {

[[nodiscard]] std::vector<Point2D> random_positions(std::size_t count,
                                                    double area_km,
                                                    util::Rng& rng) {
  std::vector<Point2D> positions(count);
  for (auto& p : positions) {
    p = {rng.uniform(0.0, area_km), rng.uniform(0.0, area_km)};
  }
  return positions;
}

void add_backbone(GeoGraph& geo, NodeId u, NodeId v,
                  const LinkDelayModel& delay) {
  geo.graph.add_edge(
      u, v,
      delay.backbone_link(euclidean_distance(geo.positions[u],
                                             geo.positions[v])));
}

}  // namespace

std::string_view to_string(TopologyFamily family) noexcept {
  switch (family) {
    case TopologyFamily::kWaxman:
      return "waxman";
    case TopologyFamily::kBarabasiAlbert:
      return "barabasi-albert";
    case TopologyFamily::kErdosRenyi:
      return "erdos-renyi";
    case TopologyFamily::kRandomGeometric:
      return "geometric";
    case TopologyFamily::kGrid:
      return "grid";
    case TopologyFamily::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

TopologyFamily topology_family_from_string(std::string_view name) {
  for (TopologyFamily family : all_topology_families()) {
    if (to_string(family) == name) return family;
  }
  throw std::invalid_argument("unknown topology family: " + std::string(name));
}

std::vector<TopologyFamily> all_topology_families() {
  return {TopologyFamily::kWaxman,          TopologyFamily::kBarabasiAlbert,
          TopologyFamily::kErdosRenyi,      TopologyFamily::kRandomGeometric,
          TopologyFamily::kGrid,            TopologyFamily::kHierarchical};
}

GeoGraph generate_waxman(const GeneratorParams& params,
                         const LinkDelayModel& delay, util::Rng& rng) {
  GeoGraph geo{Graph(params.node_count),
               random_positions(params.node_count, params.area_km, rng)};
  const double max_distance = params.area_km * std::numbers::sqrt2;
  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = u + 1; v < params.node_count; ++v) {
      const double d = euclidean_distance(geo.positions[u], geo.positions[v]);
      const double p =
          params.waxman_alpha *
          std::exp(-d / (params.waxman_beta * max_distance));
      if (rng.bernoulli(p)) add_backbone(geo, u, v, delay);
    }
  }
  return geo;
}

GeoGraph generate_barabasi_albert(const GeneratorParams& params,
                                  const LinkDelayModel& delay,
                                  util::Rng& rng) {
  const std::size_t m = std::max<std::size_t>(1, params.ba_attach_count);
  const std::size_t seed_size = std::min(params.node_count, m + 1);
  GeoGraph geo{Graph(params.node_count),
               random_positions(params.node_count, params.area_km, rng)};

  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it implements preferential attachment.
  std::vector<NodeId> endpoint_pool;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      add_backbone(geo, u, v, delay);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId node = static_cast<NodeId>(seed_size);
       node < params.node_count; ++node) {
    std::vector<NodeId> chosen;
    while (chosen.size() < std::min(m, static_cast<std::size_t>(node))) {
      const NodeId target = endpoint_pool[rng.index(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), target) == chosen.end()) {
        chosen.push_back(target);
      }
    }
    for (NodeId target : chosen) {
      add_backbone(geo, node, target, delay);
      endpoint_pool.push_back(node);
      endpoint_pool.push_back(target);
    }
  }
  return geo;
}

GeoGraph generate_erdos_renyi(const GeneratorParams& params,
                              const LinkDelayModel& delay, util::Rng& rng) {
  GeoGraph geo{Graph(params.node_count),
               random_positions(params.node_count, params.area_km, rng)};
  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = u + 1; v < params.node_count; ++v) {
      if (rng.bernoulli(params.er_edge_probability)) {
        add_backbone(geo, u, v, delay);
      }
    }
  }
  return geo;
}

GeoGraph generate_random_geometric(const GeneratorParams& params,
                                   const LinkDelayModel& delay,
                                   util::Rng& rng) {
  GeoGraph geo{Graph(params.node_count),
               random_positions(params.node_count, params.area_km, rng)};
  for (NodeId u = 0; u < params.node_count; ++u) {
    for (NodeId v = u + 1; v < params.node_count; ++v) {
      if (euclidean_distance(geo.positions[u], geo.positions[v]) <=
          params.geometric_radius_km) {
        add_backbone(geo, u, v, delay);
      }
    }
  }
  return geo;
}

GeoGraph generate_grid(const GeneratorParams& params,
                       const LinkDelayModel& delay) {
  const auto side = static_cast<std::size_t>(
      std::max(1.0, std::floor(std::sqrt(static_cast<double>(
                        std::max<std::size_t>(1, params.node_count))))));
  const std::size_t count = side * side;
  GeoGraph geo{Graph(count), std::vector<Point2D>(count)};
  const double step = side > 1 ? params.area_km / static_cast<double>(side - 1)
                               : 0.0;
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      geo.positions[r * side + c] = {static_cast<double>(c) * step,
                                     static_cast<double>(r) * step};
    }
  }
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const auto id = static_cast<NodeId>(r * side + c);
      if (c + 1 < side) add_backbone(geo, id, id + 1, delay);
      if (r + 1 < side) {
        add_backbone(geo, id, static_cast<NodeId>(id + side), delay);
      }
    }
  }
  return geo;
}

GeoGraph generate_hierarchical(const GeneratorParams& params,
                               const LinkDelayModel& delay, util::Rng& rng) {
  const std::size_t branching =
      std::max<std::size_t>(2, params.hierarchical_branching);
  const std::size_t count = std::max<std::size_t>(1, params.node_count);
  GeoGraph geo{Graph(count), std::vector<Point2D>(count)};

  // BFS-order b-ary tree. Node 0 is the root gateway at the area centre;
  // deeper tiers are spread over rings of growing radius with jitter, which
  // makes tree distance correlate only loosely with geometric distance —
  // exactly the regime where topology-oblivious assignment goes wrong.
  const Point2D centre{params.area_km / 2.0, params.area_km / 2.0};
  geo.positions[0] = centre;
  std::size_t tier_begin = 0;
  std::size_t tier_size = 1;
  std::size_t depth = 0;
  while (tier_begin + tier_size < count) {
    const std::size_t next_begin = tier_begin + tier_size;
    const std::size_t next_size =
        std::min(tier_size * branching, count - next_begin);
    const double radius =
        params.area_km / 2.0 *
        (static_cast<double>(depth + 1) / static_cast<double>(depth + 2));
    for (std::size_t k = 0; k < next_size; ++k) {
      const double angle = 2.0 * std::numbers::pi *
                               static_cast<double>(k) /
                               static_cast<double>(next_size) +
                           rng.uniform(0.0, 0.3);
      const double r = radius * rng.uniform(0.7, 1.0);
      geo.positions[next_begin + k] = {
          std::clamp(centre.x + r * std::cos(angle), 0.0, params.area_km),
          std::clamp(centre.y + r * std::sin(angle), 0.0, params.area_km)};
      const auto parent =
          static_cast<NodeId>(tier_begin + k / branching);
      add_backbone(geo, static_cast<NodeId>(next_begin + k), parent, delay);
    }
    tier_begin = next_begin;
    tier_size = next_size;
    ++depth;
  }
  return geo;
}

GeoGraph generate(TopologyFamily family, const GeneratorParams& params,
                  const LinkDelayModel& delay, util::Rng& rng) {
  GeoGraph geo = [&] {
    switch (family) {
      case TopologyFamily::kWaxman:
        return generate_waxman(params, delay, rng);
      case TopologyFamily::kBarabasiAlbert:
        return generate_barabasi_albert(params, delay, rng);
      case TopologyFamily::kErdosRenyi:
        return generate_erdos_renyi(params, delay, rng);
      case TopologyFamily::kRandomGeometric:
        return generate_random_geometric(params, delay, rng);
      case TopologyFamily::kGrid:
        return generate_grid(params, delay);
      case TopologyFamily::kHierarchical:
        return generate_hierarchical(params, delay, rng);
    }
    throw std::invalid_argument("unknown topology family");
  }();
  ensure_connected(geo, delay);
  return geo;
}

void ensure_connected(GeoGraph& geo, const LinkDelayModel& delay) {
  while (true) {
    const auto labels = connected_components(geo.graph);
    const auto component_count =
        labels.empty() ? 0u
                       : *std::max_element(labels.begin(), labels.end()) + 1;
    if (component_count <= 1) return;

    // Bridge component 0 to the nearest node of any other component.
    NodeId best_u = kInvalidNode;
    NodeId best_v = kInvalidNode;
    double best_distance = std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < geo.graph.node_count(); ++u) {
      if (labels[u] != 0) continue;
      for (NodeId v = 0; v < geo.graph.node_count(); ++v) {
        if (labels[v] == 0) continue;
        const double d =
            euclidean_distance(geo.positions[u], geo.positions[v]);
        if (d < best_distance) {
          best_distance = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    add_backbone(geo, best_u, best_v, delay);
  }
}

}  // namespace tacc::topo
