#include "topology/network.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "topology/shortest_paths.hpp"
#include "util/contracts.hpp"

namespace tacc::topo {

namespace {

/// Indices of the k nearest infrastructure nodes to `point`.
[[nodiscard]] std::vector<NodeId> nearest_routers(
    std::span<const Point2D> router_positions, Point2D point, std::size_t k) {
  std::vector<NodeId> ids(router_positions.size());
  for (NodeId i = 0; i < router_positions.size(); ++i) ids[i] = i;
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k),
                    ids.end(), [&](NodeId a, NodeId b) {
                      return euclidean_distance(router_positions[a], point) <
                             euclidean_distance(router_positions[b], point);
                    });
  ids.resize(k);
  return ids;
}

}  // namespace

NodeId NetworkTopology::acquire_node(Point2D pos, NodeKind kind) {
  const NodeId node = graph.acquire_node();
  if (node == positions.size()) {
    positions.push_back(pos);
    kinds.push_back(kind);
  } else {
    positions[node] = pos;
    kinds[node] = kind;
  }
  return node;
}

namespace {

[[nodiscard]] bool same_link(const FailedLink& link, NodeId u,
                             NodeId v) noexcept {
  return (link.u == u && link.v == v) || (link.u == v && link.v == u);
}

}  // namespace

EdgeProps NetworkTopology::fail_link(NodeId u, NodeId v) {
  const EdgeProps* props = graph.edge_props(u, v);
  if (props == nullptr) {
    throw std::invalid_argument(
        "NetworkTopology::fail_link: link does not exist");
  }
  const EdgeProps saved = *props;
  graph.remove_edge(u, v);
  failed_links.push_back({u, v, saved});
  return saved;
}

EdgeProps NetworkTopology::restore_link(NodeId u, NodeId v) {
  for (auto it = failed_links.begin(); it != failed_links.end(); ++it) {
    if (!same_link(*it, u, v)) continue;
    const EdgeProps props = it->props;
    // Re-add with the original endpoint order so restore is the exact
    // inverse of fail_link (edge direction is cosmetic; the graph is
    // undirected).
    graph.add_edge(it->u, it->v, props);
    failed_links.erase(it);
    return props;
  }
  throw std::invalid_argument(
      "NetworkTopology::restore_link: link is not failed");
}

EdgeProps NetworkTopology::set_link_latency(NodeId u, NodeId v,
                                            double latency_ms) {
  const EdgeProps* props = graph.edge_props(u, v);
  if (props == nullptr) {
    throw std::invalid_argument(
        "NetworkTopology::set_link_latency: link does not exist");
  }
  const EdgeProps previous = *props;
  if (!graph.set_edge_latency(u, v, latency_ms)) {
    throw std::invalid_argument(
        "NetworkTopology::set_link_latency: link does not exist");
  }
  return previous;
}

bool NetworkTopology::link_failed(NodeId u, NodeId v) const noexcept {
  for (const FailedLink& link : failed_links) {
    if (same_link(link, u, v)) return true;
  }
  return false;
}

void NetworkTopology::check_invariants() const {
  graph.check_invariants();
  TACC_CHECK_INVARIANT(positions.size() == graph.node_count(),
                       "positions must cover every graph node");
  TACC_CHECK_INVARIANT(kinds.size() == graph.node_count(),
                       "kinds must cover every graph node");

  for (const NodeId node : edge_nodes) {
    TACC_CHECK_INVARIANT(node < graph.node_count(),
                         "edge server node out of range");
    TACC_CHECK_INVARIANT(!graph.node_released(node),
                         "edge server node is on the free list");
    TACC_CHECK_INVARIANT(kinds[node] == NodeKind::kEdgeServer,
                         "edge server node has the wrong kind");
  }
  for (const NodeId node : iot_nodes) {
    if (node == kInvalidNode) continue;  // detached device slot
    TACC_CHECK_INVARIANT(node < graph.node_count(),
                         "IoT device node out of range");
    TACC_CHECK_INVARIANT(!graph.node_released(node),
                         "IoT device node is on the free list");
    TACC_CHECK_INVARIANT(kinds[node] == NodeKind::kIotDevice,
                         "IoT device node has the wrong kind");
  }

  // Failed-link bookkeeping vs the live edge set. Pairs recorded more than
  // once (possible with parallel links) are skipped for the absence check:
  // one instance may legitimately still be live.
  for (std::size_t a = 0; a < failed_links.size(); ++a) {
    const FailedLink& link = failed_links[a];
    TACC_CHECK_INVARIANT(
        link.u < graph.node_count() && link.v < graph.node_count(),
        "failed link endpoint out of range");
    TACC_CHECK_INVARIANT(link.props.latency_ms > 0.0,
                         "failed link saved with non-positive latency");
    bool duplicated = false;
    for (std::size_t b = 0; b < failed_links.size(); ++b) {
      if (b != a && same_link(failed_links[b], link.u, link.v)) {
        duplicated = true;
        break;
      }
    }
    TACC_CHECK_INVARIANT(
        duplicated || !graph.has_edge(link.u, link.v),
        "link recorded as failed but still present in the graph: " +
            std::to_string(link.u) + "-" + std::to_string(link.v));
  }
}

NetworkTopology build_network(const GeoGraph& infrastructure,
                              std::span<const Point2D> iot_positions,
                              std::span<const Point2D> edge_positions,
                              const LinkDelayModel& delay,
                              const AttachParams& attach) {
  if (infrastructure.graph.node_count() == 0) {
    throw std::invalid_argument("build_network: empty infrastructure");
  }
  if (iot_positions.empty() || edge_positions.empty()) {
    throw std::invalid_argument(
        "build_network: need at least one IoT device and one edge server");
  }
  const std::size_t attach_count = std::max<std::size_t>(1, attach.attach_count);

  NetworkTopology net;
  net.graph = infrastructure.graph;
  net.positions = infrastructure.positions;
  net.kinds.assign(net.graph.node_count(), NodeKind::kRouter);

  const auto attach_device = [&](Point2D pos, NodeKind kind) {
    const NodeId node = net.graph.add_node();
    net.positions.push_back(pos);
    net.kinds.push_back(kind);
    for (NodeId router :
         nearest_routers(infrastructure.positions, pos, attach_count)) {
      net.graph.add_edge(node, router,
                         delay.access_link(euclidean_distance(
                             pos, infrastructure.positions[router])));
    }
    return node;
  };

  // Edge servers typically sit beside a router: wired attachment.
  for (const Point2D& pos : edge_positions) {
    const NodeId node = net.graph.add_node();
    net.positions.push_back(pos);
    net.kinds.push_back(NodeKind::kEdgeServer);
    for (NodeId router :
         nearest_routers(infrastructure.positions, pos, attach_count)) {
      net.graph.add_edge(node, router,
                         delay.backbone_link(euclidean_distance(
                             pos, infrastructure.positions[router])));
    }
    net.edge_nodes.push_back(node);
  }
  for (const Point2D& pos : iot_positions) {
    net.iot_nodes.push_back(attach_device(pos, NodeKind::kIotDevice));
  }
  return net;
}

DelayMatrix compute_delay_matrix(const NetworkTopology& net,
                                 std::size_t threads) {
  DelayMatrix matrix(net.iot_count(), net.edge_count(), kUnreachable);
  // One Dijkstra per edge server — the hot precomputation when building
  // instances. Each tree fills a disjoint column, so the fan-out is
  // deterministic for any thread count.
  const std::vector<ShortestPathTree> trees =
      dijkstra_fan_out(net.graph, net.edge_nodes, threads);
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    for (std::size_t i = 0; i < net.iot_count(); ++i) {
      matrix.set(i, j, trees[j].distance_ms[net.iot_nodes[i]]);
    }
  }
  return matrix;
}

DelayMatrix compute_hop_matrix(const NetworkTopology& net) {
  DelayMatrix matrix(net.iot_count(), net.edge_count(), 0.0);
  for (std::size_t j = 0; j < net.edge_count(); ++j) {
    const auto hops = bfs_hops(net.graph, net.edge_nodes[j]);
    for (std::size_t i = 0; i < net.iot_count(); ++i) {
      const std::uint32_t h = hops[net.iot_nodes[i]];
      matrix.set(i, j,
                 h == kUnreachableHops ? kUnreachable
                                       : static_cast<double>(h));
    }
  }
  return matrix;
}

DelayMatrix compute_euclidean_matrix(const NetworkTopology& net) {
  DelayMatrix matrix(net.iot_count(), net.edge_count(), 0.0);
  for (std::size_t i = 0; i < net.iot_count(); ++i) {
    for (std::size_t j = 0; j < net.edge_count(); ++j) {
      matrix.set(i, j,
                 euclidean_distance(net.iot_position(i),
                                    net.edge_position(j)));
    }
  }
  return matrix;
}

}  // namespace tacc::topo
