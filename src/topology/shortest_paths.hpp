// Shortest-path primitives over the latency metric.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "topology/graph.hpp"

namespace tacc::topo {

constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Result of a single-source run: distance (ms) and predecessor per node.
struct ShortestPathTree {
  std::vector<double> distance_ms;  ///< kUnreachable if disconnected
  std::vector<NodeId> parent;       ///< kInvalidNode for source/unreached

  /// Reconstructs source→target as a node sequence; empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra with a binary heap; O((V+E) log V).
[[nodiscard]] ShortestPathTree dijkstra(const Graph& graph, NodeId source);

/// Hop counts (BFS), ignoring latencies. SIZE_MAX-like sentinel via
/// kUnreachableHops for disconnected nodes.
constexpr std::uint32_t kUnreachableHops =
    std::numeric_limits<std::uint32_t>::max();
[[nodiscard]] std::vector<std::uint32_t> bfs_hops(const Graph& graph,
                                                  NodeId source);

/// All-pairs distances via repeated Dijkstra; row-major [source][target].
/// Intended for tests and small graphs (O(V·E log V)). `threads` spreads the
/// per-source runs over a worker pool (1 = serial, 0 = hardware
/// concurrency); the result is identical for any thread count.
[[nodiscard]] std::vector<std::vector<double>> all_pairs_distances(
    const Graph& graph, std::size_t threads = 1);

/// Runs dijkstra() from every node in `sources`, spread over up to `threads`
/// workers (1 = serial, 0 = hardware concurrency). result[k] corresponds to
/// sources[k]; deterministic for any thread count. This is the hot
/// precomputation path when building delay matrices.
[[nodiscard]] std::vector<ShortestPathTree> dijkstra_fan_out(
    const Graph& graph, std::span<const NodeId> sources,
    std::size_t threads = 1);

/// Floyd–Warshall reference implementation (O(V^3)); used by tests to
/// cross-check Dijkstra.
[[nodiscard]] std::vector<std::vector<double>> floyd_warshall(
    const Graph& graph);

/// True iff every node is reachable from node 0 (or graph is empty).
[[nodiscard]] bool is_connected(const Graph& graph);

/// Connected components as a label per node (labels are dense from 0).
[[nodiscard]] std::vector<std::uint32_t> connected_components(
    const Graph& graph);

}  // namespace tacc::topo
