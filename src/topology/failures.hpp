// Failure injection: degrade a deployed network by failing backbone links
// or edge servers, for resilience experiments (A5).
//
// Only router–router links are failed — cutting a device's single access
// link would model radio loss, a different phenomenon — and a failure set
// is rejected if it disconnects any device from every server (an assignment
// would be undefined); sample_failable_links() only returns sets that keep
// all device-server pairs connected.
#pragma once

#include <utility>
#include <vector>

#include "topology/network.hpp"
#include "util/rng.hpp"

namespace tacc::topo {

using LinkEndpoints = std::pair<NodeId, NodeId>;

/// All router–router links of the network (each undirected link once).
[[nodiscard]] std::vector<LinkEndpoints> backbone_links(
    const NetworkTopology& net);

/// Samples up to `fraction` of the backbone links, skipping any link whose
/// removal (together with the already-chosen ones) would disconnect some
/// IoT device from every edge server. Deterministic in (net, fraction, rng).
[[nodiscard]] std::vector<LinkEndpoints> sample_failable_links(
    const NetworkTopology& net, double fraction, util::Rng& rng);

/// Fails each link in place (NetworkTopology::fail_link), recording it for
/// restore_links(). Throws std::invalid_argument if any link does not
/// exist; links before the bad one stay failed.
void fail_links(NetworkTopology& net, const std::vector<LinkEndpoints>& links);

/// Restores each link in place (NetworkTopology::restore_link), in reverse
/// order. Throws std::invalid_argument if any link is not failed.
void restore_links(NetworkTopology& net,
                   const std::vector<LinkEndpoints>& links);

/// True iff every IoT device can still reach at least one edge server.
[[nodiscard]] bool all_devices_served(const NetworkTopology& net);

}  // namespace tacc::topo
