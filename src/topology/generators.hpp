// Synthetic infrastructure-topology generators.
//
// Each generator produces a geometric graph of routers/access points inside
// an area_km × area_km square; link latencies come from a LinkDelayModel.
// Generators may emit disconnected graphs; ensure_connected() repairs them
// by adding the shortest possible bridging links, so downstream code can
// assume connectivity.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "topology/delay_model.hpp"
#include "topology/geometry.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace tacc::topo {

/// A graph together with the physical position of every node.
struct GeoGraph {
  Graph graph;
  std::vector<Point2D> positions;
};

enum class TopologyFamily {
  kWaxman,          ///< classic internet-like random graph (Waxman '88)
  kBarabasiAlbert,  ///< preferential attachment, heavy-tailed degrees
  kErdosRenyi,      ///< uniform random edges
  kRandomGeometric, ///< unit-disk: connect within radius (dense mesh/WSN)
  kGrid,            ///< 2-D lattice (metro street grid)
  kHierarchical,    ///< b-ary aggregation tree (cloudlet hierarchy)
};

[[nodiscard]] std::string_view to_string(TopologyFamily family) noexcept;
/// Parses the names printed by to_string; throws std::invalid_argument.
[[nodiscard]] TopologyFamily topology_family_from_string(
    std::string_view name);
/// All families, for sweep-style experiments.
[[nodiscard]] std::vector<TopologyFamily> all_topology_families();

struct GeneratorParams {
  std::size_t node_count = 50;
  double area_km = 10.0;
  // Waxman: P(u,v) = alpha * exp(-d(u,v) / (beta * max_distance))
  double waxman_alpha = 0.4;
  double waxman_beta = 0.3;
  // Barabási–Albert: edges added per new node.
  std::size_t ba_attach_count = 2;
  // Erdős–Rényi edge probability.
  double er_edge_probability = 0.08;
  // Random geometric connection radius (km).
  double geometric_radius_km = 2.5;
  // Hierarchical: children per aggregation node.
  std::size_t hierarchical_branching = 3;
};

[[nodiscard]] GeoGraph generate_waxman(const GeneratorParams& params,
                                       const LinkDelayModel& delay,
                                       util::Rng& rng);
[[nodiscard]] GeoGraph generate_barabasi_albert(const GeneratorParams& params,
                                                const LinkDelayModel& delay,
                                                util::Rng& rng);
[[nodiscard]] GeoGraph generate_erdos_renyi(const GeneratorParams& params,
                                            const LinkDelayModel& delay,
                                            util::Rng& rng);
[[nodiscard]] GeoGraph generate_random_geometric(
    const GeneratorParams& params, const LinkDelayModel& delay,
    util::Rng& rng);
/// Lattice over ceil(sqrt(node_count))²-truncated nodes; deterministic.
[[nodiscard]] GeoGraph generate_grid(const GeneratorParams& params,
                                     const LinkDelayModel& delay);
[[nodiscard]] GeoGraph generate_hierarchical(const GeneratorParams& params,
                                             const LinkDelayModel& delay,
                                             util::Rng& rng);

/// Dispatch by family; every result is post-processed by ensure_connected.
[[nodiscard]] GeoGraph generate(TopologyFamily family,
                                const GeneratorParams& params,
                                const LinkDelayModel& delay, util::Rng& rng);

/// Adds backbone links between nearest node pairs of distinct components
/// until the graph is connected.
void ensure_connected(GeoGraph& geo, const LinkDelayModel& delay);

}  // namespace tacc::topo
