#include "topology/failures.hpp"

#include <algorithm>
#include <stdexcept>

#include "topology/shortest_paths.hpp"

namespace tacc::topo {

std::vector<LinkEndpoints> backbone_links(const NetworkTopology& net) {
  std::vector<LinkEndpoints> links;
  for (NodeId u = 0; u < net.graph.node_count(); ++u) {
    if (net.kinds[u] != NodeKind::kRouter) continue;
    for (const Adjacency& adj : net.graph.neighbors(u)) {
      if (adj.to > u && net.kinds[adj.to] == NodeKind::kRouter) {
        links.push_back({u, adj.to});
      }
    }
  }
  return links;
}

bool all_devices_served(const NetworkTopology& net) {
  // Multi-source BFS from all edge servers at once.
  std::vector<char> reached(net.graph.node_count(), 0);
  std::vector<NodeId> frontier;
  for (NodeId server : net.edge_nodes) {
    reached[server] = 1;
    frontier.push_back(server);
  }
  while (!frontier.empty()) {
    const NodeId node = frontier.back();
    frontier.pop_back();
    for (const Adjacency& adj : net.graph.neighbors(node)) {
      if (!reached[adj.to]) {
        reached[adj.to] = 1;
        frontier.push_back(adj.to);
      }
    }
  }
  return std::all_of(net.iot_nodes.begin(), net.iot_nodes.end(),
                     [&](NodeId device) { return reached[device] != 0; });
}

std::vector<LinkEndpoints> sample_failable_links(const NetworkTopology& net,
                                                 double fraction,
                                                 util::Rng& rng) {
  std::vector<LinkEndpoints> candidates = backbone_links(net);
  rng.shuffle(candidates);
  const auto budget = static_cast<std::size_t>(
      fraction * static_cast<double>(candidates.size()));

  NetworkTopology scratch = net;
  std::vector<LinkEndpoints> chosen;
  for (const LinkEndpoints& link : candidates) {
    if (chosen.size() >= budget) break;
    if (!scratch.graph.has_edge(link.first, link.second)) continue;
    // fail_link remembers the props, so a stranding failure is undone with
    // restore_link instead of hunting the original properties down.
    scratch.fail_link(link.first, link.second);
    if (all_devices_served(scratch)) {
      chosen.push_back(link);
    } else {
      scratch.restore_link(link.first, link.second);
    }
  }
  return chosen;
}

void fail_links(NetworkTopology& net,
                const std::vector<LinkEndpoints>& links) {
  for (const LinkEndpoints& link : links) {
    net.fail_link(link.first, link.second);
  }
}

void restore_links(NetworkTopology& net,
                   const std::vector<LinkEndpoints>& links) {
  for (auto it = links.rbegin(); it != links.rend(); ++it) {
    net.restore_link(it->first, it->second);
  }
}

}  // namespace tacc::topo
