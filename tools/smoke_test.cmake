# Generates an instance, solves it with two algorithms, checks outputs.
set(inst "${WORKDIR}/smoke.inst")
set(assign "${WORKDIR}/smoke.assign")
execute_process(COMMAND "${GEN}" --out=${inst} --preset=smart-city
                        --iot=60 --edge=5 --seed=3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_gen failed: ${rc} ${out}")
endif()
execute_process(COMMAND "${SOLVE}" --instance=${inst} --algo=greedy-bestfit
                        --out=${assign} --bounds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve greedy failed: ${rc} ${out}")
endif()
if(NOT out MATCHES "feasible")
  message(FATAL_ERROR "tacc_solve output missing evaluation: ${out}")
endif()
if(NOT EXISTS "${assign}")
  message(FATAL_ERROR "assignment file not written")
endif()
execute_process(COMMAND "${SOLVE}" --instance=${inst} --algo=q-learning
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve q-learning failed: ${rc} ${out}")
endif()
# Portfolio mode must pick a winner and stay deterministic across thread
# counts: compare serial vs 4-worker output line by line.
execute_process(COMMAND "${SOLVE}" --instance=${inst} --portfolio --parallel=1
                RESULT_VARIABLE rc OUTPUT_VARIABLE serial_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve portfolio (serial) failed: ${rc} ${serial_out}")
endif()
if(NOT serial_out MATCHES "winner:")
  message(FATAL_ERROR "portfolio output missing winner: ${serial_out}")
endif()
execute_process(COMMAND "${SOLVE}" --instance=${inst} --portfolio --parallel=4
                RESULT_VARIABLE rc OUTPUT_VARIABLE parallel_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve portfolio (parallel) failed: ${rc} ${parallel_out}")
endif()
# Wall-clock numbers (and the padding they drive in the table) are the only
# nondeterministic text: blank out decimals, collapse runs of spaces/dashes,
# then demand the rest — winner, costs, feasibility — matches exactly.
foreach(side serial parallel)
  string(REGEX REPLACE "[0-9]+\\.[0-9]+" "#" norm "${${side}_out}")
  string(REGEX REPLACE "threads: [0-9]+" "threads: #" norm "${norm}")
  string(REGEX REPLACE "\\([0-9]+ threads" "(# threads" norm "${norm}")
  string(REGEX REPLACE "  +" " " norm "${norm}")
  string(REGEX REPLACE "--+" "-" norm "${norm}")
  set(${side}_norm "${norm}")
endforeach()
if(NOT serial_norm STREQUAL parallel_norm)
  message(FATAL_ERROR "portfolio output differs across thread counts:\n--- serial ---\n${serial_out}\n--- parallel ---\n${parallel_out}")
endif()
