# Generates an instance, solves it with two algorithms, checks outputs.
set(inst "${WORKDIR}/smoke.inst")
set(assign "${WORKDIR}/smoke.assign")
execute_process(COMMAND "${GEN}" --out=${inst} --preset=smart-city
                        --iot=60 --edge=5 --seed=3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_gen failed: ${rc} ${out}")
endif()
execute_process(COMMAND "${SOLVE}" --instance=${inst} --algo=greedy-bestfit
                        --out=${assign} --bounds
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve greedy failed: ${rc} ${out}")
endif()
if(NOT out MATCHES "feasible")
  message(FATAL_ERROR "tacc_solve output missing evaluation: ${out}")
endif()
if(NOT EXISTS "${assign}")
  message(FATAL_ERROR "assignment file not written")
endif()
execute_process(COMMAND "${SOLVE}" --instance=${inst} --algo=q-learning
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tacc_solve q-learning failed: ${rc} ${out}")
endif()
