// taccd — the topology-aware cluster-configuration daemon.
//
// Serves named, long-lived DynamicCluster sessions over a Unix-domain
// socket (and optionally TCP), speaking the line protocol in
// src/service/protocol.hpp:
//
//   taccd --socket=/tmp/taccd.sock [--port=7433] [--host=127.0.0.1]
//         [--shards=N] [--threads=N] [--max-queue=256] [--timeout-ms=1000]
//         [--max-batch=32] [--max-line=4096] [--verbose]
//         [--reopt] [--reopt-moves=32] [--reopt-device-moves=1]
//         [--reopt-window-s=10] [--reopt-interval-ms=50]
//         [--oracle=exact|landmark[,k=N][,eps=E]]
//
// Sessions are hash-partitioned across --shards engine shards (default:
// one per core), each with its own admission queue and workers; --threads
// is the total worker budget split across shards. Admission is bounded
// (--max-queue, split per shard) and every request carries a deadline
// (--timeout-ms default, timeout_ms= per request); excess load answers
// OVERLOADED / DEADLINE_EXCEEDED instead of queuing unboundedly. SIGINT or
// SIGTERM (or the SHUTDOWN verb) drains in-flight requests and exits 0.
#include <iostream>
#include <stdexcept>

#include "service/server.hpp"
#include "topology/oracle/config.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  service::ServerOptions options;
  options.unix_path = flags.get_string("socket", "");
  options.tcp_port = static_cast<int>(flags.get_int("port", -1));
  options.tcp_host = flags.get_string("host", "127.0.0.1");
  options.max_line =
      static_cast<std::size_t>(flags.get_int("max-line", 4096));
  options.engine.threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  options.engine.shards =
      static_cast<std::size_t>(flags.get_int("shards", 0));
  options.engine.max_queue =
      static_cast<std::size_t>(flags.get_int("max-queue", 256));
  options.engine.default_timeout_ms =
      flags.get_double("timeout-ms", 1000.0);
  options.engine.max_batch =
      static_cast<std::size_t>(flags.get_int("max-batch", 32));
  // --reopt attaches a background re-optimizer to every session at
  // CONFIGURE time; the knobs below set the daemon-wide migration budget
  // (REOPT_START options still override per session).
  options.engine.auto_reopt = flags.get_bool("reopt", false);
  options.engine.reopt.budget.max_moves_per_window = static_cast<std::size_t>(
      flags.get_int("reopt-moves",
                    static_cast<std::int64_t>(
                        options.engine.reopt.budget.max_moves_per_window)));
  options.engine.reopt.budget.max_device_moves_per_window =
      static_cast<std::size_t>(flags.get_int(
          "reopt-device-moves",
          static_cast<std::int64_t>(
              options.engine.reopt.budget.max_device_moves_per_window)));
  options.engine.reopt.budget.window_s = flags.get_double(
      "reopt-window-s", options.engine.reopt.budget.window_s);
  options.engine.reopt.interval_ms =
      flags.get_double("reopt-interval-ms", options.engine.reopt.interval_ms);
  // --oracle sets the delay-oracle backend for sessions whose CONFIGURE
  // carries no oracle= option. Validate here so a typo fails at startup
  // instead of on the first CONFIGURE.
  options.engine.default_oracle = flags.get_string("oracle", "");
  if (!options.engine.default_oracle.empty()) {
    try {
      (void)topo::oracle::parse_oracle_spec(options.engine.default_oracle);
    } catch (const std::invalid_argument& error) {
      std::cerr << "taccd: bad --oracle spec: " << error.what() << "\n";
      return 2;
    }
  }
  if (flags.get_bool("verbose", false)) {
    util::set_log_level(util::LogLevel::kInfo);
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    std::cerr << "usage: taccd --socket=<path> [--port=N] [--host=ADDR] "
                 "[--shards=N] [--threads=N] [--max-queue=N] [--timeout-ms=T] "
                 "[--max-batch=N] [--max-line=BYTES] [--verbose] [--reopt] "
                 "[--reopt-moves=N] [--reopt-device-moves=N] "
                 "[--reopt-window-s=S] [--reopt-interval-ms=T] "
                 "[--oracle=SPEC]\n"
                 "at least one of --socket / --port is required\n";
    return 2;
  }
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }

  service::Server server(std::move(options));
  server.install_signal_handlers();
  std::cout << "taccd: listening (shards=" << server.engine().shard_count()
            << ")";
  if (!server.unix_path().empty()) {
    std::cout << " on unix:" << server.unix_path();
  }
  if (server.tcp_port() >= 0) {
    std::cout << " on tcp:" << server.tcp_port();
  }
  std::cout << std::endl;  // flush so launch scripts can wait on this line

  server.run();

  const service::EngineCounters counters = server.engine().counters();
  std::cout << "taccd: exiting (accepted=" << counters.accepted
            << " completed=" << counters.completed
            << " failed=" << counters.failed
            << " rejected_overload=" << counters.rejected_overload
            << " rejected_deadline=" << counters.rejected_deadline
            << " rejected_shutdown=" << counters.rejected_shutdown
            << " rejected_not_found=" << counters.rejected_not_found
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "taccd: " << error.what() << "\n";
    return 1;
  }
}
