// tacc_client — CLI client for taccd.
//
// One-shot (request words as positional args; key=value options pass
// through untouched):
//
//   tacc_client --socket=/tmp/taccd.sock CONFIGURE city 200 10 seed=7
//   tacc_client --socket=/tmp/taccd.sock JOIN city 1.5 2.0
//   tacc_client --tcp=127.0.0.1:7433 STATS city
//
// Pipelined (--stdin): every stdin line is sent before any response is
// read; responses print in request order, one per line. This is the mode
// that can actually overflow the daemon's admission queue.
//
// Exit codes: 0 all responses were OK; 3 at least one ERR response;
// 4 connection failed; 5 connection dropped before every response arrived;
// 2 usage error.
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/flags.hpp"

namespace {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return -1;
  const std::string host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Reads one '\n'-terminated line (without the newline) via `buffer`.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

int run(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const std::string socket_path = flags.get_string("socket", "");
  const std::string tcp_spec = flags.get_string("tcp", "");
  const bool from_stdin = flags.get_bool("stdin", false);
  const std::vector<std::string>& words = flags.positional();

  if ((socket_path.empty() == tcp_spec.empty()) ||
      (from_stdin == !words.empty())) {
    std::cerr << "usage: tacc_client (--socket=PATH | --tcp=HOST:PORT) "
                 "(REQUEST WORDS... | --stdin)\n";
    return 2;
  }
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }

  std::vector<std::string> requests;
  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  } else {
    std::string line;
    for (const std::string& word : words) {
      if (!line.empty()) line += ' ';
      line += word;
    }
    requests.push_back(std::move(line));
  }
  if (requests.empty()) {
    std::cerr << "tacc_client: no requests on stdin\n";
    return 2;
  }

  ::signal(SIGPIPE, SIG_IGN);
  const int fd = socket_path.empty() ? connect_tcp(tcp_spec)
                                     : connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "tacc_client: cannot connect to "
              << (socket_path.empty() ? tcp_spec : socket_path) << "\n";
    return 4;
  }

  // Pipelined send: all requests go out before any response is read. The
  // daemon's reader thread keeps consuming while its workers respond, so
  // this cannot deadlock at smoke-test scale.
  std::string outgoing;
  for (const std::string& request : requests) {
    outgoing += request;
    outgoing += '\n';
  }
  if (!send_all(fd, outgoing)) {
    std::cerr << "tacc_client: send failed\n";
    ::close(fd);
    return 5;
  }

  std::string buffer;
  std::string response;
  bool any_err = false;
  std::size_t received = 0;
  while (received < requests.size() &&
         read_line(fd, buffer, response)) {
    std::cout << response << "\n";
    if (response.rfind("OK", 0) != 0) any_err = true;
    ++received;
  }
  ::close(fd);
  if (received < requests.size()) {
    std::cerr << "tacc_client: connection closed after " << received << "/"
              << requests.size() << " responses\n";
    return 5;
  }
  return any_err ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "tacc_client: " << error.what() << "\n";
    return 1;
  }
}
