// tacc_solve — solve a TACC instance file and report/emit the assignment.
//
//   tacc_solve --instance=city.inst [--algo=q-learning] [--seed=1]
//              [--out=assignment.txt] [--bounds]
//              [--portfolio] [--parallel=N]
//
// Prints the static evaluation (cost, delays, utilization, feasibility);
// --bounds additionally computes the lower bounds and the optimality gap.
// --portfolio races every comparison algorithm over the instance (fanned
// across --parallel=N workers) and reports the cheapest feasible winner;
// results are bit-identical for any N.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/tacc.hpp"
#include "gap/io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const std::string path = flags.get_string("instance", "");
  if (path.empty()) {
    std::cerr << "usage: tacc_solve --instance=<path> [--algo=q-learning] "
                 "[--seed=S] [--out=<assignment path>] [--bounds] "
                 "[--portfolio] [--parallel=N]\n"
              << "algorithms:";
    for (Algorithm a : all_algorithms()) std::cerr << ' ' << to_string(a);
    std::cerr << "\n";
    return 2;
  }
  const gap::Instance instance = gap::load_instance_file(path);
  const Algorithm algorithm =
      algorithm_from_string(flags.get_string("algo", "q-learning"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool portfolio = flags.get_bool("portfolio", false);
  // Negative means "pick for me", same as 0 (hardware concurrency).
  const auto parallel = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("parallel", 1)));
  AlgorithmOptions options;
  options.apply_seed(seed);

  solvers::SolveResult result;
  gap::Evaluation ev;
  Algorithm reported = algorithm;
  if (portfolio) {
    // Race the comparison set; each entry gets a deterministic per-task seed
    // so reruns replay exactly, regardless of worker count.
    std::vector<runtime::SolveTask> tasks;
    for (Algorithm a : comparison_algorithms()) {
      runtime::SolveTask task;
      task.algorithm = a;
      task.options = options;
      task.options.apply_seed(runtime::derive_task_seed(seed, tasks.size()));
      tasks.push_back(std::move(task));
    }
    runtime::PortfolioRunner runner(parallel);
    runtime::RunStats stats;
    const std::vector<runtime::TaskOutcome> outcomes =
        runner.run_tasks(instance, tasks, &stats);
    util::ConsoleTable table({"algorithm", "cost", "feasible", "wall (ms)"});
    for (const runtime::TaskOutcome& out : outcomes) {
      table.add_row({std::string(to_string(out.algorithm)),
                     util::format_double(out.evaluation.total_cost, 2),
                     out.evaluation.feasible ? "yes" : "no",
                     util::format_double(out.result.wall_ms, 1)});
    }
    std::cout << table.to_string("portfolio (" +
                                 std::to_string(stats.threads) + " threads, " +
                                 util::format_double(stats.total_wall_ms, 1) +
                                 " ms total):");
    const std::size_t winner = runtime::pick_winner(
        std::span<const runtime::TaskOutcome>(outcomes));
    reported = outcomes[winner].algorithm;
    result = outcomes[winner].result;
    ev = outcomes[winner].evaluation;
    std::cout << "winner:     " << to_string(reported) << "\n";
  } else {
    result = make_solver(algorithm, options)->solve(instance);
    ev = gap::evaluate(instance, result.assignment);
  }

  std::cout << "instance:   " << instance.device_count() << " devices x "
            << instance.server_count() << " servers (load factor "
            << util::format_double(instance.load_factor(), 3) << ")\n"
            << "algorithm:  " << to_string(reported) << " (seed "
            << options.seed << ", " << util::format_double(result.wall_ms, 1)
            << " ms)\n"
            << "result:     " << ev.to_string() << "\n";
  if (result.proven_optimal) std::cout << "optimality: proven optimal\n";

  if (flags.get_bool("bounds", false)) {
    const auto bounds = solvers::compute_lower_bounds(instance);
    std::cout << "lower bounds: min-cost "
              << util::format_double(bounds.min_cost, 2)
              << ", splittable-flow "
              << util::format_double(bounds.splittable_flow, 2)
              << " -> gap "
              << util::format_double(
                     (ev.total_cost / bounds.splittable_flow - 1.0) * 100.0,
                     2)
              << "%\n";
  }

  const std::string out = flags.get_string("out", "");
  if (!out.empty()) {
    std::ofstream stream(out);
    if (!stream) throw std::runtime_error("cannot open for write: " + out);
    gap::save_assignment(result.assignment, stream);
    std::cout << "assignment written to " << out << "\n";
  }
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  return ev.feasible ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "tacc_solve: " << error.what() << "\n";
    return 1;
  }
}
