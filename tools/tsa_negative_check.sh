#!/usr/bin/env bash
# Proof that the thread-safety gate actually fires: compiles a seeded lock
# discipline violation (a TACC_GUARDED_BY field written without its mutex)
# against the real util/mutex.hpp with -Werror=thread-safety and asserts the
# build FAILS — then compiles the corrected version and asserts it passes.
# A green -Wthread-safety CI job is only meaningful alongside this check:
# if the annotations were disabled (wrong compiler, macro gate broken, flag
# dropped), step 1 would "succeed" and this script would fail.
#
# Usage: tools/tsa_negative_check.sh [repo_root]
# Exit: 0 = gate verified; 77 = no clang available (ctest SKIP_RETURN_CODE);
#       1 = gate did NOT fire (or a clean TU failed to build).
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

# Thread-safety analysis is clang-only; the macros no-op elsewhere.
cxx=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    cxx="$candidate"
    break
  fi
done
if [[ -z "$cxx" ]]; then
  echo "tsa_negative_check: SKIPPED — no clang++ on PATH (the" \
       "-Wthread-safety gate is clang-only)"
  exit 77
fi

workdir="$(mktemp -d -t tacc_tsa_check.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT

cat > "$workdir/violation.cpp" <<'EOF'
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

struct Account {
  tacc::Mutex mu;
  int balance TACC_GUARDED_BY(mu) = 0;

  // Seeded violation: writes a guarded field without holding its mutex.
  void deposit_unlocked() { balance += 1; }
};

int main() {
  Account account;
  account.deposit_unlocked();
  return account.balance == 1 ? 0 : 1;
}
EOF

cat > "$workdir/fixed.cpp" <<'EOF'
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

struct Account {
  tacc::Mutex mu;
  int balance TACC_GUARDED_BY(mu) = 0;

  void deposit() TACC_EXCLUDES(mu) {
    const tacc::MutexLock lock(&mu);
    balance += 1;
  }
};

int main() {
  Account account;
  account.deposit();
  tacc::MutexLock lock(&account.mu);
  return account.balance == 1 ? 0 : 1;
}
EOF

flags=(-std=c++20 "-I$root/src" -Wthread-safety -Werror=thread-safety
       -fsyntax-only)

echo "tsa_negative_check: using $cxx"

# Step 1: the seeded violation MUST be rejected.
if out="$("$cxx" "${flags[@]}" "$workdir/violation.cpp" 2>&1)"; then
  echo "tsa_negative_check: FAIL — the seeded guarded-field violation" \
       "compiled cleanly; the -Wthread-safety gate is NOT firing"
  exit 1
fi
if ! grep -q "thread-safety" <<<"$out"; then
  echo "tsa_negative_check: FAIL — compilation failed for a reason other" \
       "than thread-safety analysis:"
  echo "$out"
  exit 1
fi
echo "tsa_negative_check: ok — seeded violation rejected" \
     "($(grep -c "error:" <<<"$out") error(s))"

# Step 2: the disciplined version MUST build, or the gate is unusable.
if ! out="$("$cxx" "${flags[@]}" "$workdir/fixed.cpp" 2>&1)"; then
  echo "tsa_negative_check: FAIL — the corrected TU did not compile under" \
       "-Werror=thread-safety:"
  echo "$out"
  exit 1
fi
echo "tsa_negative_check: ok — disciplined version accepted"
echo "tsa_negative_check: PASS"
exit 0
