#!/usr/bin/env python3
"""Self-test for the project linters (tools/lint_tacc.py + tools/ast_lint.py).

Builds a throwaway source tree with seeded rule violations and asserts the
linters classify every case correctly:

  1. lint_tacc R1/R2/R3/R4 smoke cases fire, and the --json schema is
     exactly {count, findings:[{file,line,rule,message}]}.
  2. The R5 marker-line discipline: a bare NOLINTNEXTLINE whose
     justification sits on the FOLLOWING line is flagged (the false
     negative this rule exists to close), reasons on the marker line pass,
     block-comment markers are checked, NOLINTEND must name its checks.
  3. The documented R7 regex blind spot: an aliased DelayMatrixCache
     access (`auto& store = provider.cache(); store.refresh();`) that
     never spells the class name is INVISIBLE to the regex linter — and
     detected by ast_lint.py when libclang is available. Same for an R6
     mutation through a temporary (`provider.cluster().join(...)`).

The ast_lint half degrades gracefully: without libclang it prints a skip
notice and the test still passes (the regex-side assertions always run).

Run directly or via ctest (registered as `lint_selftest`).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
PYTHON = sys.executable

CHECKS_PASSED = 0


def check(condition: bool, label: str) -> None:
    global CHECKS_PASSED
    if not condition:
        print(f"lint_selftest: FAIL: {label}")
        sys.exit(1)
    CHECKS_PASSED += 1
    print(f"lint_selftest: ok: {label}")


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def run_lint(root: Path) -> dict:
    proc = subprocess.run(
        [PYTHON, str(TOOLS / "lint_tacc.py"), "--json", "--root", str(root)],
        capture_output=True, text=True, check=False)
    return json.loads(proc.stdout)


def rules_at(result: dict, rel: str) -> set[str]:
    return {f["rule"] for f in result["findings"] if f["file"] == rel}


def seed_tree(root: Path) -> None:
    # Minimal real-ish classes so the ast_lint cases parse as a TU.
    write(root, "src/topology/incremental/cache.hpp", """\
#pragma once
namespace tacc::topo::incr {
class DelayMatrixCache {
 public:
  void refresh() {}
  [[nodiscard]] double at(int, int) const { return 0.0; }
};
}  // namespace tacc::topo::incr
""")
    write(root, "src/core/dynamic.hpp", """\
#pragma once
namespace tacc {
class DynamicCluster {
 public:
  void join() {}
  void leave(int) {}
};
}  // namespace tacc
""")
    write(root, "src/core/provider.hpp", """\
#pragma once
#include "core/dynamic.hpp"
#include "topology/incremental/cache.hpp"
namespace tacc::core {
class Provider {
 public:
  [[nodiscard]] topo::incr::DelayMatrixCache& cache() { return cache_; }
  [[nodiscard]] DynamicCluster& cluster() { return cluster_; }
 private:
  topo::incr::DelayMatrixCache cache_;
  DynamicCluster cluster_;
};
}  // namespace tacc::core
""")
    # R1: raw assert in library code.
    write(root, "src/util/asserting.cpp", """\
#include <cassert>
namespace tacc::util {
void guard(int x) { assert(x > 0); }
}  // namespace tacc::util
""")
    # R2 + R3: console I/O and a removed API mention.
    write(root, "src/util/chatty.cpp", """\
#include <iostream>
namespace tacc::util {
void chatty() { std::cout << "hi"; }
void legacy() { /* code, not comment: */ int with_failed_links = 0;
                (void)with_failed_links; }
}  // namespace tacc::util
""")
    # R4: missing #pragma once.
    write(root, "src/util/no_pragma.hpp", """\
namespace tacc::util {}
""")
    # R5 cases, one file per verdict so assertions stay line-independent.
    write(root, "src/util/r5_bare_nextline.hpp", """\
#pragma once
// NOLINTNEXTLINE
// The justification on this following line must NOT satisfy R5.
inline int r5a() { return 1; }
""")
    write(root, "src/util/r5_no_reason.hpp", """\
#pragma once
inline int r5b() { return 1; }  // NOLINT(bugprone-foo)
""")
    write(root, "src/util/r5_block_no_reason.hpp", """\
#pragma once
inline int r5c() { return 1; }  /* NOLINT(bugprone-foo) */
""")
    write(root, "src/util/r5_bare_end.hpp", """\
#pragma once
// NOLINTBEGIN(bugprone-foo): scoped suppression with a reason
inline int r5d() { return 1; }
// NOLINTEND
""")
    write(root, "src/util/r5_clean.hpp", """\
#pragma once
inline int r5e() { return 1; }  // NOLINT(bugprone-foo): justified here
// NOLINTNEXTLINE(bugprone-bar): also justified on the marker line
inline int r5f() { return 2; }
// NOLINTBEGIN(bugprone-baz): reason for the range
inline int r5g() { return 3; }
// NOLINTEND(bugprone-baz)
""")
    # R7 regex blind spot: the class name never appears in this file; the
    # only route to it is through auto-deduced references. R6 blind spot:
    # the mutator's receiver is a temporary-returning call, which the
    # receiver-identifier regex cannot see.
    write(root, "src/optimize/aliased.cpp", """\
#include "core/provider.hpp"
namespace tacc::opt {
double touch(core::Provider& provider) {
  auto& store = provider.cache();
  store.refresh();
  provider.cluster().join();
  return store.at(0, 0);
}
}  // namespace tacc::opt
""")
    build = root / "build"
    build.mkdir(parents=True, exist_ok=True)
    (build / "compile_commands.json").write_text(json.dumps([{
        "directory": str(root),
        "file": str(root / "src/optimize/aliased.cpp"),
        "arguments": ["clang++", "-std=c++20", f"-I{root}/src", "-c",
                      str(root / "src/optimize/aliased.cpp")],
    }, {
        "directory": str(root),
        "file": str(root / "src/util/asserting.cpp"),
        "arguments": ["clang++", "-std=c++20", f"-I{root}/src", "-c",
                      str(root / "src/util/asserting.cpp")],
    }]), encoding="utf-8")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="tacc_lint_selftest_") as tmp:
        root = Path(tmp)
        seed_tree(root)
        result = run_lint(root)

        # --json schema.
        check(set(result.keys()) == {"count", "findings"},
              "--json object has exactly {count, findings}")
        check(result["count"] == len(result["findings"]),
              "--json count matches findings length")
        check(all(set(f.keys()) == {"file", "line", "rule", "message"}
                  and isinstance(f["line"], int)
                  for f in result["findings"]),
              "--json findings carry file/line/rule/message")

        # Core rules fire.
        check("R1" in rules_at(result, "src/util/asserting.cpp"),
              "R1 flags a raw assert()")
        check("R2" in rules_at(result, "src/util/chatty.cpp"),
              "R2 flags console I/O in src/")
        check("R3" in rules_at(result, "src/util/chatty.cpp"),
              "R3 flags a removed-API mention")
        check("R4" in rules_at(result, "src/util/no_pragma.hpp"),
              "R4 flags a header without #pragma once")

        # R5 marker-line discipline.
        check("R5" in rules_at(result, "src/util/r5_bare_nextline.hpp"),
              "R5 flags bare NOLINTNEXTLINE with the reason on the next "
              "line (the closed false negative)")
        check("R5" in rules_at(result, "src/util/r5_no_reason.hpp"),
              "R5 flags NOLINT(check) without a reason")
        check("R5" in rules_at(result, "src/util/r5_block_no_reason.hpp"),
              "R5 flags /* NOLINT(check) */ without a reason")
        check("R5" in rules_at(result, "src/util/r5_bare_end.hpp"),
              "R5 flags NOLINTEND without named checks")
        check(rules_at(result, "src/util/r5_clean.hpp") == set(),
              "R5 passes justified markers (line, NEXTLINE, BEGIN/END)")

        # The regex linter is blind to the aliased delay-store access and
        # the temporary-receiver mutation — that blindness is the reason
        # ast_lint exists, so assert it explicitly.
        check(rules_at(result, "src/optimize/aliased.cpp") == set(),
              "regex R6/R7 miss aliased access (documented blind spot)")

        # ast_lint catches both — when libclang is available.
        proc = subprocess.run(
            [PYTHON, str(TOOLS / "ast_lint.py"), "--root", str(root),
             "-p", str(root / "build"), "--json"],
            capture_output=True, text=True, check=False)
        ast = json.loads(proc.stdout)
        if ast.get("skipped"):
            print("lint_selftest: NOTICE: ast_lint half skipped — "
                  "libclang unavailable on this machine")
        else:
            aliased = {(f["rule"]) for f in ast["findings"]
                       if f["file"] == "src/optimize/aliased.cpp"}
            check("R7" in aliased,
                  "ast_lint R7 catches the aliased DelayMatrixCache access")
            check("R6" in aliased,
                  "ast_lint R6 catches the temporary-receiver mutation")
            asserting = {(f["rule"]) for f in ast["findings"]
                         if f["file"] == "src/util/asserting.cpp"}
            check("R1" in asserting,
                  "ast_lint R1 catches the expanded __assert_fail call")

    print(f"lint_selftest: PASS ({CHECKS_PASSED} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
