#!/usr/bin/env bash
# Replay-parity smoke: a WorkloadProvider stream rendered by tacc_workload
# must replay cleanly against a live taccd — every wire line answered OK
# (any NOT_FOUND/BAD_REQUEST means the adapter's slot mirror diverged from
# the daemon's real allocator) — and the response transcript must be
# byte-identical:
#   1. across two fresh daemons (same shard count): accepted/completed
#      counts match run over run;
#   2. across shard counts (--shards=1 vs --shards=4): the replayed stream
#      interleaves two sessions that hash to different shards, so their
#      requests complete on different worker pools in nondeterministic
#      order — the per-connection response sequencer must still deliver
#      replies strictly in request order, or the transcripts diverge.
#
#   taccd_replay_smoke.sh <taccd> <tacc_client> <tacc_workload>
set -euo pipefail

TACCD=${1:?usage: taccd_replay_smoke.sh <taccd> <tacc_client> <tacc_workload>}
CLIENT=${2:?usage: taccd_replay_smoke.sh <taccd> <tacc_client> <tacc_workload>}
WORKLOAD=${3:?usage: taccd_replay_smoke.sh <taccd> <tacc_client> <tacc_workload>}

WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/taccd_replay_XXXXXX")
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

SPEC="steady,link_rate=0.5"
GEN_ARGS=(--workload="$SPEC" --events=400 --iot=60 --edge=8 --seed=77)

# The generator itself must be deterministic before replay parity means
# anything.
"$WORKLOAD" "${GEN_ARGS[@]}" > "$WORKDIR/stream_a.txt"
"$WORKLOAD" "${GEN_ARGS[@]}" > "$WORKDIR/stream_b.txt"
cmp -s "$WORKDIR/stream_a.txt" "$WORKDIR/stream_b.txt" \
  || { echo "FAIL: tacc_workload output differs across identical runs"; exit 1; }

# Second session with its own stream, then interleave the two line-by-line:
# the pipelined replay now alternates between sessions on one connection.
"$WORKLOAD" --workload="$SPEC" --events=400 --iot=60 --edge=8 --seed=78 \
            --session=wl2 > "$WORKDIR/stream_c.txt"
paste -d'\n' "$WORKDIR/stream_a.txt" "$WORKDIR/stream_c.txt" \
  | grep -v '^$' > "$WORKDIR/interleaved.txt"

replay() { # replay <transcript-out> <shards>
  local out=$1
  local shards=$2
  local sock
  sock=$(mktemp -u "$WORKDIR/taccd_XXXXXX.sock")
  # Pipelined replay submits the whole stream before reading responses, so
  # the admission queue must hold it all — backpressure is m3's concern.
  "$TACCD" --socket="$sock" --shards="$shards" --threads=2 \
           --timeout-ms=60000 --max-queue=8192 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || { echo "FAIL: daemon never bound $sock"; exit 1; }

  local rc=0
  "$CLIENT" --socket="$sock" --stdin < "$WORKDIR/interleaved.txt" > "$out" \
    || rc=$?
  # Exit 0 = every request answered OK. 3 would mean ERR responses (a slot
  # mirror or legality bug); anything else is a transport failure.
  [ "$rc" -eq 0 ] || { echo "FAIL: replay client exited $rc (want 0: all OK)"; exit 1; }

  kill -TERM "$DAEMON_PID"
  local drc=0
  wait "$DAEMON_PID" || drc=$?
  DAEMON_PID=""
  [ "$drc" -eq 0 ] || { echo "FAIL: taccd exited $drc on SIGTERM"; exit 1; }
}

replay "$WORKDIR/replay_1.txt" 1
replay "$WORKDIR/replay_2.txt" 1
replay "$WORKDIR/replay_s4.txt" 4

LINES=$(wc -l < "$WORKDIR/interleaved.txt")
RESPONSES=$(wc -l < "$WORKDIR/replay_1.txt")
[ "$RESPONSES" -eq "$LINES" ] \
  || { echo "FAIL: $LINES requests but $RESPONSES responses"; exit 1; }

cmp -s "$WORKDIR/replay_1.txt" "$WORKDIR/replay_2.txt" \
  || { echo "FAIL: replay transcripts differ between fresh daemons"; exit 1; }

cmp -s "$WORKDIR/replay_1.txt" "$WORKDIR/replay_s4.txt" \
  || { echo "FAIL: transcripts differ between --shards=1 and --shards=4 (response ordering broke)"; exit 1; }

echo "taccd replay smoke passed: $LINES requests ($SPEC, 2 sessions), all OK, transcripts identical at 1 and 4 shards"
