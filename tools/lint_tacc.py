#!/usr/bin/env python3
"""Project-rule linter for the tacc repo.

Enforces the conventions clang-tidy cannot express:

  R1  no raw assert() in src/ — use TACC_ASSERT/TACC_REQUIRE/TACC_ENSURE
      (src/util/contracts.hpp) so checks route through the pluggable
      failure handler and compile out consistently.
  R2  no console I/O (std::cout/std::cerr/printf/puts) in src/ — library
      code reports through util::log or return values; only util/log.cpp
      (the sink itself) writes to a stream. Benches/tools/examples are
      exempt: they ARE console programs.
  R3  removed-API call sites: with_failed_links and
      configure_topology_oblivious/configure_deadline_aware finished their
      deprecation cycle and are gone. Any mention in code is forbidden —
      use the in-place mutation path / ConfigureRequest API.
  R4  include hygiene: no uphill-relative includes ("../"), no
      <bits/stdc++.h>, every header starts with #pragma once, and every
      src/ .cpp includes its own header first (self-contained headers).
  R5  NOLINT markers must carry a justification ON THE MARKER LINE:
      "NOLINT(check): reason" / "NOLINTNEXTLINE(check): reason" /
      "NOLINTBEGIN(check): reason". A comment on the following line does
      not count (nothing ties it to the suppression), a bare NOLINT never
      passes, and block-comment markers (/* NOLINT(...) */) are held to
      the same rule. NOLINTEND only needs to name the check(s) it closes.
  R6  src/optimize/ never mutates a DynamicCluster directly: no calls to
      move/move_pinned/join/leave/rebalance/repair/fail_server/
      recover_server/evacuate_server — every optimizer mutation goes
      through DynamicCluster::apply_move_plan(), which re-validates
      against live state and meters the migration budget.
  R7  src/solvers/ and src/optimize/ never read the delay store directly:
      no DelayMatrixCache references and no topology/incremental/cache.hpp
      includes — all delay queries go through the DelayOracle interface
      (src/topology/oracle/) so exact and approximate backends stay
      interchangeable.

Run from the repo root (or via the `lint` CMake target):
    python3 tools/lint_tacc.py [--json] [--root DIR]
Exits 1 if any finding is reported, printing file:line: rule: message —
or, with --json, a machine-readable {"count": N, "findings": [...]} object
(each finding carries file/line/rule/message) for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src"]
ALL_CODE_DIRS = ["src", "bench", "examples", "tools", "tests"]

# R3: symbol -> replacement. These finished their deprecation cycle and were
# deleted; no file may mention them in code (comments are fine — the
# scrubber strips them before matching).
REMOVED_APIS = {
    "with_failed_links": "topo::fail_links/restore_links in place",
    "configure_topology_oblivious":
        "configure({algorithm, options, CostModel::kEuclidean})",
    "configure_deadline_aware":
        "configure({algorithm, options, CostModel::kDeadlinePenalized, "
        "penalty})",
}

# R2: the logging sink is the one legitimate stream writer in src/.
CONSOLE_IO_ALLOWLIST = {"src/util/log.cpp"}

# R6: direct cluster mutators banned in src/optimize/ (the receiver is
# captured so thread handles — e.g. thread_.join() — stay exempt).
CLUSTER_MUTATOR = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*"
    r"(move|move_pinned|join|leave|rebalance|repair|fail_server|"
    r"recover_server|evacuate_server)\s*\(")

RAW_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
CONSOLE_IO = re.compile(
    r"std::(cout|cerr|printf|puts)\b|(?<![A-Za-z0-9_:.])(printf|puts)\s*\(")
UPHILL_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
BITS_INCLUDE = re.compile(r"#\s*include\s*<bits/stdc\+\+\.h>")
INCLUDE_LINE = re.compile(r'#\s*include\s*"([^"]+)"')
# Any clang-tidy suppression marker, in a line or block comment. Groups:
# (1) variant suffix, (2) parenthesized check list incl. parens,
# (3) check list, (4) everything after the marker (the reason must live
# here — on the marker line — so the suppression and its justification
# can never drift apart).
NOLINT = re.compile(
    r"(?://|/\*)\s*NOLINT(NEXTLINE|BEGIN|END)?\b(\(([^)]*)\))?(.*)")


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub: drops // comments and string literals so
    rules don't fire on prose or formatted messages."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"//.*$", "", line)
    return line


def iter_files(root: Path, dirs: list[str],
               suffixes: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for d in dirs:
        base = root / d
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in suffixes and p.is_file())
    return files


def collect_findings(root: Path) -> list[dict]:
    findings: list[dict] = []

    def report(path: Path, line_no: int, rule: str, message: str) -> None:
        findings.append({
            "file": path.relative_to(root).as_posix(),
            "line": line_no,
            "rule": rule,
            "message": message,
        })

    # ---- src/-only rules (R1, R2, R4 self-include) --------------------------
    for path in iter_files(root, SRC_DIRS, (".cpp", ".hpp")):
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        in_block_comment = False

        for i, raw in enumerate(lines, start=1):
            line = raw
            if in_block_comment:
                if "*/" in line:
                    line = line.split("*/", 1)[1]
                    in_block_comment = False
                else:
                    continue
            if "/*" in line and "*/" not in line:
                in_block_comment = True
                line = line.split("/*", 1)[0]
            code = strip_comments_and_strings(line)

            if rel != "src/util/contracts.hpp":
                m = RAW_ASSERT.search(code)
                if m and "static_assert" not in code:
                    report(path, i, "R1",
                           "raw assert() in library code; use TACC_ASSERT/"
                           "TACC_REQUIRE/TACC_ENSURE (util/contracts.hpp)")
            if rel not in CONSOLE_IO_ALLOWLIST and CONSOLE_IO.search(code):
                if "snprintf" not in code:  # bounded formatting, not console IO
                    report(path, i, "R2",
                           "console I/O in library code; report via "
                           "util::log or return values")

            # R6: the re-optimizer only reads the cluster; all mutation
            # goes through apply_move_plan() under the owner's lock.
            if rel.startswith("src/optimize/"):
                for m in CLUSTER_MUTATOR.finditer(code):
                    if "thread" in m.group(1):
                        continue  # std::jthread handle, not a cluster
                    report(path, i, "R6",
                           f"direct DynamicCluster mutation "
                           f"'{m.group(1)}.{m.group(2)}()' in src/optimize/; "
                           "use DynamicCluster::apply_move_plan()")

            # R7: solvers and the optimizer see delays only through the
            # DelayOracle; touching the cache ties them to the exact backend.
            if rel.startswith(("src/solvers/", "src/optimize/")):
                if "DelayMatrixCache" in code:
                    report(path, i, "R7",
                           "direct DelayMatrixCache reference; query delays "
                           "through DelayOracle (topology/oracle/oracle.hpp)")
                if re.search(r'#\s*include\s*"topology/incremental/cache\.hpp"',
                             raw):
                    report(path, i, "R7",
                           "topology/incremental/cache.hpp include; use the "
                           "DelayOracle interface (topology/oracle/oracle.hpp)")

        # R4: self-contained headers — a src/ .cpp includes its header first.
        if path.suffix == ".cpp":
            own = rel[len("src/"):-len(".cpp")] + ".hpp"
            if (root / "src" / own).exists():
                first = next((m.group(1) for line in lines
                              if (m := INCLUDE_LINE.match(line.strip()))),
                             None)
                if first != own:
                    report(path, 1, "R4",
                           f'first project include must be own header "{own}" '
                           f'(found {first!r})')

    # ---- Repo-wide rules (R3, R4 includes, R5) ------------------------------
    for path in iter_files(root, ALL_CODE_DIRS, (".cpp", ".hpp")):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()

        if path.suffix == ".hpp":
            first_code = next((ln.strip() for ln in lines
                               if ln.strip() and not ln.strip().startswith("//")),
                              "")
            if first_code != "#pragma once":
                report(path, 1, "R4", "header must open with #pragma once "
                                      "(after the file comment)")

        for i, raw in enumerate(lines, start=1):
            # Include rules look at the raw line: the string-stripper would
            # erase the quoted include path itself.
            if UPHILL_INCLUDE.search(raw):
                report(path, i, "R4", 'uphill-relative include ("../"); use a '
                                      "root-relative path")
            if BITS_INCLUDE.search(raw):
                report(path, i, "R4", "<bits/stdc++.h> is non-standard")
            code = strip_comments_and_strings(raw)

            for symbol, replacement in REMOVED_APIS.items():
                if symbol in code:
                    report(path, i, "R3",
                           f"{symbol} was removed; use {replacement}")

            m = NOLINT.search(raw)
            if m:
                variant = m.group(1) or ""
                marker = "NOLINT" + variant
                checks = m.group(3)
                reason = (m.group(4) or "").strip().lstrip(":").strip()
                if reason.endswith("*/"):
                    reason = reason[:-2].strip()  # block-comment close
                if variant == "END":
                    # NOLINTEND closes a range; the justification lives on
                    # the matching NOLINTBEGIN. It must still name the
                    # check(s) so ranges can't silently widen.
                    if not checks:
                        report(path, i, "R5",
                               "NOLINTEND must name the check(s) it closes")
                elif not checks:
                    report(path, i, "R5",
                           f"bare {marker}; name the check: "
                           f"{marker}(check): why")
                elif not reason:
                    report(path, i, "R5",
                           f"{marker}({checks}) without a justification on "
                           "the marker line (a comment on the following "
                           "line does not count)")

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description="tacc project-rule linter")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON findings")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo root)")
    args = parser.parse_args()
    root = Path(args.root).resolve() if args.root else DEFAULT_ROOT

    findings = collect_findings(root)
    if args.as_json:
        print(json.dumps({"count": len(findings), "findings": findings},
                         indent=2))
        return 1 if findings else 0
    if findings:
        print(f"lint_tacc: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f['file']}:{f['line']}: {f['rule']}: {f['message']}")
        return 1
    print("lint_tacc: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
