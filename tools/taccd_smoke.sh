#!/usr/bin/env bash
# End-to-end daemon smoke: start taccd, drive a CONFIGURE/JOIN/MOVE/STATS
# sequence plus one forced OVERLOADED rejection through tacc_client, then
# SIGTERM and assert a graceful zero-exit drain. CI runs this against the
# ASan+UBSan build, so a clean exit is also a zero-leak assertion.
#
#   taccd_smoke.sh <path-to-taccd> <path-to-tacc_client>
set -euo pipefail

TACCD=${1:?usage: taccd_smoke.sh <taccd> <tacc_client>}
CLIENT=${2:?usage: taccd_smoke.sh <taccd> <tacc_client>}
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/taccd_smoke_XXXXXX.sock")
OUT=$(mktemp "${TMPDIR:-/tmp}/taccd_smoke_out_XXXXXX")

cleanup() {
  kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -f "$SOCK" "$OUT"
}
trap cleanup EXIT

# Tiny admission queue so the forced-overload phase overflows reliably —
# with 2 shards, --max-queue=4 is two slots per shard: enough for the
# pipelined LINK_FAIL/LINK_RESTORE pair, small enough that the 6-deep
# overload pipeline below still overflows. 2 shards so the sharded
# admission path is what the sanitizers exercise.
"$TACCD" --socket="$SOCK" --shards=2 --threads=2 --max-queue=4 --timeout-ms=5000 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; exit 1; }

expect_ok() {
  echo "-> $*"
  "$CLIENT" --socket="$SOCK" "$@" | tee -a "$OUT" | grep -q '^OK' \
    || { echo "FAIL: expected OK from: $*"; exit 1; }
}

expect_ok PING
expect_ok CONFIGURE smoke 80 6 seed=7
expect_ok JOIN smoke 1.5 2.0
expect_ok MOVE smoke 0 2.5 1.5
expect_ok STATS smoke
expect_ok STATS

# Per-shard STATS breakdown: the daemon runs 2 shards, so the opt-in
# shards=1 reply must carry both shards' ledger blocks.
SHARD_LINE=$("$CLIENT" --socket="$SOCK" STATS shards=1)
echo "-> STATS shards=1: $SHARD_LINE"
printf '%s\n' "$SHARD_LINE" | grep -q 'shards=2' \
  || { echo "FAIL: global STATS did not report shards=2"; exit 1; }
printf '%s\n' "$SHARD_LINE" | grep -q 's0_accepted=' \
  || { echo "FAIL: STATS shards=1 missing shard 0 breakdown"; exit 1; }
printf '%s\n' "$SHARD_LINE" | grep -q 's1_accepted=' \
  || { echo "FAIL: STATS shards=1 missing shard 1 breakdown"; exit 1; }

# Backbone link churn: discover a live router-router link via LINKS, fail
# and restore it in place, and check STATS reports the engine epoch moving.
LINKS_LINE=$("$CLIENT" --socket="$SOCK" LINKS smoke limit=1)
echo "-> LINKS smoke limit=1: $LINKS_LINE"
LINK=$(printf '%s\n' "$LINKS_LINE" | sed -n 's/.*links=\([0-9]*-[0-9]*\).*/\1/p')
[ -n "$LINK" ] || { echo "FAIL: LINKS returned no backbone link"; exit 1; }
U=${LINK%-*}
V=${LINK#*-}
printf 'LINK_FAIL smoke %s %s\nLINK_RESTORE smoke %s %s\n' \
  "$U" "$V" "$U" "$V" | "$CLIENT" --socket="$SOCK" --stdin > "$OUT.links"
cat "$OUT.links"
[ "$(grep -c '^OK' "$OUT.links")" -eq 2 ] \
  || { echo "FAIL: LINK_FAIL/LINK_RESTORE round trip failed"; exit 1; }
# STATS snapshots flush per batch; query on a fresh connection after the
# link batch has fully responded.
STATS_LINE=$("$CLIENT" --socket="$SOCK" STATS smoke)
echo "-> STATS smoke: $STATS_LINE"
printf '%s\n' "$STATS_LINE" | grep -q 'link_updates=2' \
  || { echo "FAIL: STATS did not report link_updates=2"; exit 1; }
rm -f "$OUT.links"

# Delay-oracle observability: ORACLE_STATS must answer for both backends,
# name the backend it serves from, and its queries / exact_fallbacks
# counters must be monotone non-decreasing across calls (they are
# cumulative; a reset would silently corrupt rate computations downstream).
field() {
  printf '%s\n' "$1" | sed -n "s/.*[[:space:]]$2=\([0-9][0-9]*\).*/\1/p"
}

ORA1=$("$CLIENT" --socket="$SOCK" ORACLE_STATS smoke)
echo "-> ORACLE_STATS smoke: $ORA1"
printf '%s\n' "$ORA1" | grep -q 'backend=exact' \
  || { echo "FAIL: smoke session not on the exact oracle backend"; exit 1; }
Q1=$(field "$ORA1" queries)
[ -n "$Q1" ] || { echo "FAIL: ORACLE_STATS missing queries="; exit 1; }
expect_ok JOIN smoke 2.2 1.1
ORA2=$("$CLIENT" --socket="$SOCK" ORACLE_STATS smoke)
echo "-> ORACLE_STATS smoke: $ORA2"
Q2=$(field "$ORA2" queries)
[ "$Q2" -ge "$Q1" ] \
  || { echo "FAIL: exact oracle queries went backwards ($Q1 -> $Q2)"; exit 1; }

# Same verb against a landmark-backed session (per-request oracle= spec
# overrides the daemon-wide default).
expect_ok CONFIGURE lmk 80 6 seed=7 oracle=landmark,k=4,eps=0.25
expect_ok JOIN lmk 1.2 3.4
LM1=$("$CLIENT" --socket="$SOCK" ORACLE_STATS lmk)
echo "-> ORACLE_STATS lmk: $LM1"
printf '%s\n' "$LM1" | grep -q 'backend=landmark' \
  || { echo "FAIL: lmk session not on the landmark backend"; exit 1; }
LQ1=$(field "$LM1" queries)
LF1=$(field "$LM1" exact_fallbacks)
[ -n "$LQ1" ] && [ -n "$LF1" ] \
  || { echo "FAIL: landmark ORACLE_STATS missing counters"; exit 1; }
expect_ok JOIN lmk 2.2 0.4
expect_ok JOIN lmk 0.4 2.8
LM2=$("$CLIENT" --socket="$SOCK" ORACLE_STATS lmk)
echo "-> ORACLE_STATS lmk: $LM2"
LQ2=$(field "$LM2" queries)
LF2=$(field "$LM2" exact_fallbacks)
[ "$LQ2" -gt "$LQ1" ] \
  || { echo "FAIL: landmark queries not increasing ($LQ1 -> $LQ2) after JOINs"; exit 1; }
[ "$LF2" -ge "$LF1" ] \
  || { echo "FAIL: landmark exact_fallbacks went backwards ($LF1 -> $LF2)"; exit 1; }

# Forced OVERLOADED: pipeline a SLEEP that occupies the session plus more
# JOINs than the 2-deep admission queue can hold. The client exits 3 (some
# ERR responses) — what matters is that every request got exactly one
# response and at least one was OVERLOADED.
PIPELINE=$'SLEEP smoke 500\nJOIN smoke 1 1\nJOIN smoke 1 2\nJOIN smoke 2 1\nJOIN smoke 2 2\nJOIN smoke 3 3'
set +e
printf '%s\n' "$PIPELINE" | "$CLIENT" --socket="$SOCK" --stdin > "$OUT.pipeline"
PIPELINE_RC=$?
set -e
cat "$OUT.pipeline"
[ "$PIPELINE_RC" -eq 3 ] || { echo "FAIL: pipelined client exited $PIPELINE_RC (want 3: all responses received, some ERR)"; exit 1; }
[ "$(wc -l < "$OUT.pipeline")" -eq 6 ] || { echo "FAIL: expected 6 responses"; exit 1; }
grep -q 'ERR OVERLOADED' "$OUT.pipeline" || { echo "FAIL: no OVERLOADED rejection"; exit 1; }
rm -f "$OUT.pipeline"

# Graceful drain: SIGTERM must exit 0 (under ASan this asserts no leaks).
kill -TERM "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
DAEMON_RC=$?
set -e
[ "$DAEMON_RC" -eq 0 ] || { echo "FAIL: taccd exited $DAEMON_RC on SIGTERM"; exit 1; }
[ ! -S "$SOCK" ] || { echo "FAIL: socket file not unlinked on shutdown"; exit 1; }

echo "taccd smoke passed"
