#!/usr/bin/env python3
"""Validate BENCH_*.json perf artifacts against schema_version 1.

Usage:
    check_bench_json.py FILE_OR_DIR [FILE_OR_DIR ...] [--require-gates-pass]

A directory argument expands to every BENCH_*.json directly inside it.
Exit 0 when every file validates (and, with --require-gates-pass, every
gate in every file passed); exit 1 with one line per violation otherwise;
exit 2 on usage errors or unreadable files.

Schema (written by bench::BenchReport in bench/bench_common.hpp):
    {
      "schema_version": 1,
      "bench": "m2_churn",          # matches the BENCH_<bench>.json filename
      "provider": "steady",         # workload spec, "" for static benches
      "seed": 1000,
      "quick": true,
      "git_describe": "abc1234",
      "metrics": {"<key>": <finite number>, ...},
      "gates": [{"name": "...", "passed": true}, ...]
    }

Per-bench requirements (beyond the generic schema):
    m3_serve must record the engine shard-scaling curve: at least two
    rps_shards_<k> metrics (positive, integer k), a shard_scaling metric
    equal to rps at the largest shard count over rps at the smallest, and
    a shard_scaling gate.
    m5_reopt must record the re-optimizer contract: non-negative
    reopt_gap_pct and reopt_cpu_ratio metrics, a reopt_gap gate, a
    reopt_cpu gate on full runs (quick runs skip the timing gate), and
    the reopt_invariants + soak_accounting gates from the engine soak.
    m6_oracle must record the approximate-oracle contract: a positive
    certified_eps, a positive memory_ratio, an exact_fallback_rate in
    [0, 1], and the solve_gap + envelope_containment + memory_reduction +
    incremental_invalidation gates.
"""

import json
import math
import pathlib
import sys


def check_file(path: pathlib.Path, require_gates_pass: bool) -> list[str]:
    problems = []

    def bad(msg: str) -> None:
        problems.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable or invalid JSON: {err}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    expected_keys = {
        "schema_version", "bench", "provider", "seed", "quick",
        "git_describe", "metrics", "gates",
    }
    missing = expected_keys - doc.keys()
    if missing:
        bad(f"missing keys: {sorted(missing)}")
    extra = doc.keys() - expected_keys
    if extra:
        bad(f"unknown keys: {sorted(extra)}")

    if doc.get("schema_version") != 1:
        bad(f"schema_version is {doc.get('schema_version')!r}, expected 1")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        bad("'bench' must be a non-empty string")
    elif path.name != f"BENCH_{bench}.json":
        bad(f"'bench' is {bench!r} but the file is named {path.name}")
    if not isinstance(doc.get("provider"), str):
        bad("'provider' must be a string")
    if not isinstance(doc.get("seed"), int) or isinstance(doc.get("seed"), bool):
        bad("'seed' must be an integer")
    if not isinstance(doc.get("quick"), bool):
        bad("'quick' must be a boolean")
    if not isinstance(doc.get("git_describe"), str) or not doc.get("git_describe"):
        bad("'git_describe' must be a non-empty string")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        bad("'metrics' must be an object")
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                bad(f"metric {key!r} is not a number: {value!r}")
            elif not math.isfinite(value):
                bad(f"metric {key!r} is not finite: {value!r}")

    gates = doc.get("gates")
    if not isinstance(gates, list):
        bad("'gates' must be an array")
    else:
        for i, gate in enumerate(gates):
            if (not isinstance(gate, dict)
                    or set(gate.keys()) != {"name", "passed"}
                    or not isinstance(gate.get("name"), str)
                    or not isinstance(gate.get("passed"), bool)):
                bad(f"gate[{i}] must be {{'name': str, 'passed': bool}}: "
                    f"{gate!r}")
            elif require_gates_pass and not gate["passed"]:
                bad(f"gate {gate['name']!r} failed")

    if bench == "m3_serve" and isinstance(metrics, dict):
        problems.extend(check_shard_curve(path, metrics, gates))
    if bench == "m5_reopt" and isinstance(metrics, dict):
        problems.extend(check_reopt_contract(path, doc, metrics, gates))
    if bench == "m6_oracle" and isinstance(metrics, dict):
        problems.extend(check_oracle_contract(path, metrics, gates))

    return problems


def check_oracle_contract(path: pathlib.Path, metrics: dict,
                          gates) -> list[str]:
    """m6_oracle: the approximate-oracle quality/memory contract."""
    problems = []

    def bad(msg: str) -> None:
        problems.append(f"{path}: {msg}")

    for key in ("certified_eps", "memory_ratio"):
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            bad(f"m6_oracle must record a numeric {key} metric")
        elif value <= 0:
            bad(f"metric {key!r} must be positive, got {value!r}")

    rate = metrics.get("exact_fallback_rate")
    if not isinstance(rate, (int, float)) or isinstance(rate, bool):
        bad("m6_oracle must record a numeric exact_fallback_rate metric")
    elif not 0 <= rate <= 1:
        bad(f"metric 'exact_fallback_rate' must be in [0, 1], got {rate!r}")

    gate_names = {g.get("name") for g in gates if isinstance(g, dict)} \
        if isinstance(gates, list) else set()
    required = {"solve_gap", "envelope_containment", "memory_reduction",
                "incremental_invalidation"}
    for name in sorted(required - gate_names):
        bad(f"m6_oracle must gate on {name}")

    return problems


def check_reopt_contract(path: pathlib.Path, doc: dict, metrics: dict,
                         gates) -> list[str]:
    """m5_reopt: the re-optimizer gap/CPU contract must be recorded."""
    problems = []

    def bad(msg: str) -> None:
        problems.append(f"{path}: {msg}")

    for key in ("reopt_gap_pct", "reopt_cpu_ratio"):
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            bad(f"m5_reopt must record a numeric {key} metric")
        elif value < 0:
            bad(f"metric {key!r} must be non-negative, got {value!r}")

    gate_names = {g.get("name") for g in gates if isinstance(g, dict)} \
        if isinstance(gates, list) else set()
    required = {"reopt_gap", "soak_accounting", "reopt_invariants"}
    if doc.get("quick") is not True:
        required.add("reopt_cpu")  # timing gate is skipped under --quick
    for name in sorted(required - gate_names):
        bad(f"m5_reopt must gate on {name}")

    return problems


def check_shard_curve(path: pathlib.Path, metrics: dict,
                      gates) -> list[str]:
    """m3_serve: the shard-scaling curve must be recorded and coherent."""
    problems = []

    def bad(msg: str) -> None:
        problems.append(f"{path}: {msg}")

    curve = {}
    for key, value in metrics.items():
        if not key.startswith("rps_shards_"):
            continue
        suffix = key[len("rps_shards_"):]
        if not suffix.isdigit() or int(suffix) == 0:
            bad(f"metric {key!r} has a non-integer shard count")
            continue
        if not isinstance(value, (int, float)) or value <= 0:
            bad(f"metric {key!r} must be a positive rps, got {value!r}")
            continue
        curve[int(suffix)] = value

    if len(curve) < 2:
        bad("m3_serve must record rps_shards_<k> for at least two shard "
            f"counts, found {sorted(curve)}")
        return problems

    scaling = metrics.get("shard_scaling")
    if not isinstance(scaling, (int, float)):
        bad("m3_serve must record a numeric shard_scaling metric")
    else:
        expected = curve[max(curve)] / curve[min(curve)]
        if not math.isclose(scaling, expected, rel_tol=1e-6):
            bad(f"shard_scaling is {scaling} but rps_shards_{max(curve)} / "
                f"rps_shards_{min(curve)} = {expected}")

    gate_names = {g.get("name") for g in gates if isinstance(g, dict)} \
        if isinstance(gates, list) else set()
    if "shard_scaling" not in gate_names:
        bad("m3_serve must gate on shard_scaling")

    return problems


def main(argv: list[str]) -> int:
    require_gates_pass = "--require-gates-pass" in argv
    paths = [a for a in argv if a != "--require-gates-pass"]
    if not paths:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2

    files: list[pathlib.Path] = []
    for arg in paths:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"check_bench_json: no such file or directory: {p}",
                  file=sys.stderr)
            return 2
    if not files:
        print("check_bench_json: no BENCH_*.json files found", file=sys.stderr)
        return 2

    problems = []
    for f in files:
        problems.extend(check_file(f, require_gates_pass))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"check_bench_json: {len(files)} artifact(s) valid")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
