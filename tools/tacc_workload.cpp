// tacc_workload — render a WorkloadProvider event stream as taccd wire
// lines on stdout, ready for `tacc_client --stdin` replay.
//
//   tacc_workload --workload=flash_crowd,burst_rate=30 [--events=1000]
//                 [--iot=120] [--edge=10] [--seed=1000] [--session=wl]
//                 [--algo=greedy-bestfit] [--step-s=1] [--no-configure]
//   tacc_workload --list
//
// The first line is the CONFIGURE that creates the session (suppress with
// --no-configure when appending to an existing session); every following
// line is one JOIN/LEAVE/MOVE/LINK_* request. The stream is a pure function
// of (--workload, --iot, --edge, --seed, --step-s): the same invocation
// always prints byte-identical output, which is what makes daemon replays
// comparable across runs and machines (see tools/taccd_replay_smoke.sh).
#include <iostream>

#include "core/tacc.hpp"
#include "util/flags.hpp"
#include "workload/wire.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.get_bool("list", false)) {
    for (const std::string_view name : workload::provider_names()) {
      std::cout << name << "  (params:";
      for (const std::string& key : workload::provider_param_keys(name)) {
        std::cout << " " << key;
      }
      std::cout << ")\n";
    }
    return 0;
  }
  const std::string spec = flags.get_string("workload", "");
  if (spec.empty()) {
    std::cerr << "usage: tacc_workload --workload=NAME[,k=v...] "
                 "[--events=1000] [--iot=120] [--edge=10] [--seed=1000] "
                 "[--session=wl] [--algo=greedy-bestfit] [--step-s=1] "
                 "[--no-configure] | --list\n";
    return 2;
  }
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 120));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1000));
  const auto events = static_cast<std::size_t>(flags.get_int("events", 1000));
  const std::string session = flags.get_string("session", "wl");
  const std::string algo = flags.get_string("algo", "greedy-bestfit");
  const double step_s = flags.get_double("step-s", 1.0);
  const bool configure = !flags.get_bool("no-configure", false);

  const Scenario scenario = Scenario::smart_city(iot, edge, seed);
  const workload::ProviderContext ctx = workload::make_context(
      scenario.network(), scenario.workload(),
      scenario.params().workload.area_km, seed);
  auto provider = workload::make_provider(spec, ctx);
  workload::WireAdapter adapter(ctx, session);

  if (configure) {
    std::cout << adapter.configure_line(iot, edge, seed, algo, "smart_city")
              << "\n";
  }
  std::size_t emitted = 0;
  while (emitted < events) {
    for (const workload::Event& event : provider->step(step_s)) {
      if (emitted >= events) break;
      for (const std::string& line : adapter.render(event)) {
        std::cout << line << "\n";
      }
      ++emitted;
    }
  }
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "tacc_workload: " << error.what() << "\n";
    return 1;
  }
}
