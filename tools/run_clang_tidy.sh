#!/usr/bin/env bash
# Runs the curated .clang-tidy profile over every src/ translation unit.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR]
#   BUILD_DIR defaults to ./build and must contain compile_commands.json
#   (the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Exit codes:
#   0  clean, or clang-tidy not installed (prints a notice — the container
#      used for local development does not ship clang-tidy; CI installs it
#      and is where this gate actually bites)
#   1  clang-tidy reported findings (WarningsAsErrors promotes all of them)
#   2  usage error: no compile_commands.json in BUILD_DIR
#
# Override the binary with CLANG_TIDY=/path/to/clang-tidy.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "${CLANG_TIDY}"
    return
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return
    fi
  done
}

tidy_bin="$(find_clang_tidy)"
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (CI runs the gate)."
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing." >&2
  echo "  Configure first: cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 2
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "run_clang_tidy: $("${tidy_bin}" --version | head -n 1)"
echo "run_clang_tidy: checking ${#sources[@]} translation units in src/"

status=0
for source in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${source}"; then
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above (WarningsAsErrors='*')" >&2
fi
exit ${status}
