#!/usr/bin/env python3
"""AST-accurate project lint for the tacc repo (libclang).

Re-implements the project rules that regexes cannot enforce reliably as
real AST checks over compile_commands.json:

  R1  no raw assert() in src/ — after preprocessing a raw assert() is a
      call to __assert_fail (glibc) / __assert_rtn (macOS), which survives
      any amount of wrapping or macro indirection that hides the token
      `assert` from tools/lint_tacc.py.
  R6  src/optimize/ never mutates a DynamicCluster directly: flags any
      call whose *referenced declaration* is a mutating method of
      tacc::DynamicCluster (move/join/leave/fail_server/...), no matter
      what the receiver expression looks like — `cluster_->join(...)`,
      `auto& c = *cluster_; c.join(...)`, and calls through references
      all resolve to the same method declaration.
  R7  src/solvers/ and src/optimize/ never touch the delay store: flags
      any expression whose type — or whose referenced declaration's
      parent — is tacc::topo::incr::DelayMatrixCache. Catches aliased
      access (`auto& store = engine.cache(); store.refresh();`) where the
      class name never appears in the file and the regex rule is blind.

Usage (from the repo root, after a cmake configure that wrote
compile_commands.json):
    python3 tools/ast_lint.py [-p build] [--root .] [--json] [--strict]

Graceful degradation: when the clang Python bindings or the libclang
shared library are unavailable the linter prints a skip notice and exits 0
(so the `lint` target works on machines without clang); pass --strict to
turn that skip into a failure (CI does, after installing clang).
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from pathlib import Path

# Mutating methods of tacc::DynamicCluster (mirrors lint_tacc.py R6).
CLUSTER_MUTATORS = {
    "move", "move_pinned", "join", "leave", "rebalance", "repair",
    "fail_server", "recover_server", "evacuate_server",
}

# Directories (relative to --root) each rule applies to.
R1_DIRS = ("src/",)
R1_EXEMPT = ("src/util/contracts.hpp",)
R6_DIRS = ("src/optimize/",)
R7_DIRS = ("src/solvers/", "src/optimize/")

ASSERT_CALLEES = {"__assert_fail", "__assert_rtn", "__assert", "_assert"}


def load_cindex():
    """Returns a usable clang.cindex module or None, probing common
    libclang install locations when the default resolution fails."""
    try:
        from clang import cindex
    except ImportError:
        return None
    candidates = [None]  # None = the binding's own default
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang.so.1",
        "/usr/lib/llvm-*/lib/libclang-*.so.1",
        "/usr/lib/x86_64-linux-gnu/libclang-*.so.1",
        "/usr/lib/libclang.so*",
    ):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for candidate in candidates:
        try:
            if candidate is not None:
                cindex.Config.library_file = candidate
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 - any load failure means "try next"
            # Config is sticky once a library loaded; retry needs a reset.
            cindex.Config.loaded = False
            continue
    return None


def qualified_name(cursor) -> str:
    """Fully qualified name of a declaration cursor (namespaces + classes)."""
    parts: list[str] = []
    c = cursor
    while c is not None and c.kind is not None:
        if c.kind.name == "TRANSLATION_UNIT":
            break
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


class AstLinter:
    def __init__(self, root: Path):
        self.root = root
        # (rel_file, line, rule) -> message; dedupes across the many TUs
        # that include the same header.
        self.findings: dict[tuple[str, int, str], str] = {}

    def relpath(self, cursor) -> str | None:
        location = cursor.location
        if location.file is None:
            return None
        try:
            path = Path(location.file.name).resolve()
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return None  # outside the repo (system headers)

    def report(self, cursor, rule: str, message: str) -> None:
        rel = self.relpath(cursor)
        if rel is None:
            return
        self.findings.setdefault((rel, cursor.location.line, rule), message)

    def check_cursor(self, cursor, rel: str) -> None:
        kind = cursor.kind.name

        # R1: a raw assert() expands to a branch calling __assert_fail.
        if (rel.startswith(R1_DIRS) and rel not in R1_EXEMPT
                and kind in ("CALL_EXPR", "DECL_REF_EXPR")
                and cursor.spelling in ASSERT_CALLEES):
            self.report(cursor, "R1",
                        "raw assert() (expands to a call to "
                        f"{cursor.spelling}); use TACC_ASSERT/TACC_REQUIRE/"
                        "TACC_ENSURE (util/contracts.hpp)")

        # R6: any reference to a mutating method declared on DynamicCluster,
        # regardless of the receiver expression's spelling.
        if rel.startswith(R6_DIRS):
            referenced = cursor.referenced
            if (referenced is not None
                    and referenced.kind.name == "CXX_METHOD"
                    and referenced.spelling in CLUSTER_MUTATORS):
                parent = referenced.semantic_parent
                if parent is not None and qualified_name(parent).endswith(
                        "tacc::DynamicCluster"):
                    self.report(
                        cursor, "R6",
                        f"call resolves to tacc::DynamicCluster::"
                        f"{referenced.spelling}(); optimizer mutations must "
                        "go through DynamicCluster::apply_move_plan()")

        # R7: any expression typed as (or declared inside) DelayMatrixCache.
        if rel.startswith(R7_DIRS):
            hit = False
            type_spelling = cursor.type.spelling if cursor.type else ""
            if "DelayMatrixCache" in type_spelling:
                hit = True
            referenced = cursor.referenced
            if not hit and referenced is not None:
                parent = referenced.semantic_parent
                if parent is not None and parent.spelling == "DelayMatrixCache":
                    hit = True
            if hit:
                self.report(
                    cursor, "R7",
                    "expression touches tacc::topo::incr::DelayMatrixCache; "
                    "query delays through the DelayOracle interface "
                    "(topology/oracle/oracle.hpp)")

    def walk(self, cursor) -> None:
        for child in cursor.walk_preorder():
            rel = self.relpath(child)
            if rel is None:
                continue
            self.check_cursor(child, rel)


def tu_compile_args(command) -> list[str]:
    """Extracts the flags libclang needs from one compile command (drops the
    compiler argv[0], the input file, and output/dep artifacts)."""
    raw = list(command.arguments)
    args: list[str] = []
    skip_next = False
    source = command.filename
    for token in raw[1:]:
        if skip_next:
            skip_next = False
            continue
        if token in ("-o", "-MF", "-MT", "-MQ", "--output"):
            skip_next = True
            continue
        if token in ("-c", "-MD", "-MMD", "-MP"):
            continue
        if token == source or token.endswith(Path(source).name):
            continue
        args.append(token)
    return args


def run(root: Path, build_dir: Path, strict: bool,
        as_json: bool) -> int:
    cindex = load_cindex()
    if cindex is None:
        notice = ("ast_lint: SKIPPED — clang Python bindings / libclang not "
                  "available (install python3-clang + libclang to enable the "
                  "AST checks)")
        if as_json:
            print(json.dumps({"skipped": True, "findings": [],
                              "notice": notice}))
        else:
            print(notice)
        return 1 if strict else 0

    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        notice = (f"ast_lint: SKIPPED — no compile_commands.json in "
                  f"{build_dir} (configure with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        if as_json:
            print(json.dumps({"skipped": True, "findings": [],
                              "notice": notice}))
        else:
            print(notice)
        return 1 if strict else 0

    database = cindex.CompilationDatabase.fromDirectory(str(build_dir))
    index = cindex.Index.create()
    linter = AstLinter(root)

    sources: list = []
    for command in database.getAllCompileCommands():
        source = Path(command.filename)
        if not source.is_absolute():
            source = Path(command.directory) / source
        source = source.resolve()
        try:
            rel = source.relative_to(root).as_posix()
        except ValueError:
            continue
        if rel.startswith("src/"):
            sources.append((source, command))

    parse_failures = 0
    for source, command in sources:
        try:
            tu = index.parse(str(source), args=tu_compile_args(command))
        except cindex.TranslationUnitLoadError:
            parse_failures += 1
            continue
        linter.walk(tu.cursor)

    findings = [
        {"file": file, "line": line, "rule": rule, "message": message}
        for (file, line, rule), message in sorted(linter.findings.items())
    ]
    if as_json:
        print(json.dumps({"skipped": False, "findings": findings,
                          "translation_units": len(sources),
                          "parse_failures": parse_failures}, indent=2))
    else:
        if findings:
            print(f"ast_lint: {len(findings)} finding(s) across "
                  f"{len(sources)} translation units")
            for f in findings:
                print(f"  {f['file']}:{f['line']}: {f['rule']}: "
                      f"{f['message']}")
        else:
            print(f"ast_lint: clean ({len(sources)} translation units"
                  + (f", {parse_failures} parse failures" if parse_failures
                     else "") + ")")
    if parse_failures and strict:
        print(f"ast_lint: {parse_failures} translation unit(s) failed to "
              "parse (--strict treats this as an error)", file=sys.stderr)
        return 1
    return 1 if findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build",
                        help="directory containing compile_commands.json")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON findings")
    parser.add_argument("--strict", action="store_true",
                        help="fail instead of skipping when libclang or the "
                             "compile database is unavailable")
    args = parser.parse_args()

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir
    return run(root, build_dir, args.strict, args.as_json)


if __name__ == "__main__":
    sys.exit(main())
