// tacc_gen — generate a TACC instance file from scenario parameters.
//
//   tacc_gen --out=city.inst [--preset=smart-city|factory|campus]
//            [--iot=500] [--edge=20] [--seed=42]
//            [--family=waxman|...] [--rho=0.7] [--area=10]
//
// Without --preset, a scenario is assembled from the individual knobs.
// The emitted file is the `gap/io.hpp` text format, consumable by
// tacc_solve or gap::load_instance_file().
#include <iostream>

#include "core/tacc.hpp"
#include "gap/io.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace tacc;

int run(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cerr << "usage: tacc_gen --out=<path> [--preset=...] [--iot=N] "
                 "[--edge=M] [--seed=S] [--family=waxman] [--rho=0.7] "
                 "[--area=10]\n";
    return 2;
  }
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 500));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string preset = flags.get_string("preset", "");

  Scenario scenario = [&] {
    if (preset == "smart-city") return Scenario::smart_city(iot, edge, seed);
    if (preset == "factory") return Scenario::factory(iot, edge, seed);
    if (preset == "campus") return Scenario::campus(iot, edge, seed);
    if (!preset.empty()) {
      throw std::invalid_argument("unknown preset: " + preset);
    }
    ScenarioParams params;
    params.seed = seed;
    params.family = topo::topology_family_from_string(
        flags.get_string("family", "waxman"));
    params.workload.iot_count = iot;
    params.workload.edge_count = edge;
    params.workload.load_factor = flags.get_double("rho", 0.7);
    params.workload.area_km = flags.get_double("area", 10.0);
    params.topology.area_km = params.workload.area_km;
    return Scenario::generate(params);
  }();

  gap::save_instance_file(scenario.instance(), out);
  std::cout << "wrote " << out << ": " << iot << " devices x " << edge
            << " servers, load factor "
            << util::format_double(scenario.workload().load_factor(), 3)
            << "\n";
  for (const std::string& name : flags.unused()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "tacc_gen: " << error.what() << "\n";
    return 1;
  }
}
