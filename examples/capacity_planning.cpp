// Capacity planning: "how many edge servers does this city need to hit a
// target mean delay?" — the analytic M/D/1 predictor answers in
// milliseconds what would take the packet simulator minutes to sweep, and
// the final answer is validated with one simulation run.
//
//   ./capacity_planning [--iot=400] [--target_ms=12] [--seed=17]
#include <iostream>

#include "core/tacc.hpp"
#include "sim/analytic.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 400));
  const double target_ms = flags.get_double("target_ms", 14.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));

  std::cout << "Planning for " << iot << " IoT devices; target mean delay "
            << tacc::util::format_double(target_ms, 1) << " ms\n\n";

  tacc::util::ConsoleTable table({"edge servers", "predicted mean (ms)",
                                  "max util", "meets target"});
  std::size_t chosen = 0;
  tacc::Scenario chosen_scenario = tacc::Scenario::smart_city(iot, 4, seed);
  tacc::ClusterConfiguration chosen_conf =
      tacc::ClusterConfigurator(chosen_scenario)
          .configure({tacc::Algorithm::kGreedyBestFit});

  // Provisioning framing: each edge server has a FIXED capacity (sized so
  // that ~16 servers run at 70% load); adding servers adds capacity.
  const double per_server_capacity =
      static_cast<double>(iot) * 10.0 / (0.7 * 16.0);
  for (std::size_t m = 4; m <= 48; m += 4) {
    tacc::ScenarioParams params;
    params.seed = seed;
    params.workload.iot_count = iot;
    params.workload.edge_count = m;
    params.workload.fixed_capacity_per_server = per_server_capacity;
    const tacc::Scenario scenario = tacc::Scenario::generate(params);
    if (scenario.workload().load_factor() >= 1.0) {
      table.add_row({std::to_string(m), "infeasible (rho >= 1)", "-", "no"});
      continue;
    }
    tacc::AlgorithmOptions options;
    options.apply_seed(seed);
    const auto conf = tacc::ClusterConfigurator(scenario).configure(
        {tacc::Algorithm::kQLearning, options});
    const auto prediction = tacc::sim::predict_delays(
        scenario.network(), scenario.workload(), conf.assignment());
    const bool ok =
        !prediction.saturated && prediction.mean_delay_ms <= target_ms;
    double max_util = 0.0;
    for (double u : prediction.server_utilization) {
      max_util = std::max(max_util, u);
    }
    table.add_row({std::to_string(m),
                   prediction.saturated
                       ? std::string("saturated")
                       : tacc::util::format_double(prediction.mean_delay_ms,
                                                   2),
                   tacc::util::format_double(max_util, 2),
                   ok ? "yes" : "no"});
    if (ok && chosen == 0) {
      chosen = m;
      chosen_scenario = scenario;
      chosen_conf = conf;
    }
  }
  std::cout << table.to_string("Predicted mean delay vs cluster size:")
            << "\n";
  if (chosen == 0) {
    std::cout << "No cluster size up to 48 meets the target. Note the\n"
                 "queueing floor: the delay-minimizing assignment packs the\n"
                 "nearest servers to capacity, so each carries ~75%\n"
                 "utilization regardless of fleet size — to go lower,\n"
                 "trade assignment delay for load spreading or upgrade\n"
                 "per-server capacity.\n";
    return 1;
  }

  // Validate the chosen size with one real simulation.
  const auto sim = tacc::sim::simulate(
      chosen_scenario.network(), chosen_scenario.workload(),
      chosen_conf.assignment(), {.duration_s = 20.0, .warmup_s = 2.0,
                                 .seed = seed});
  std::cout << "Chosen size: " << chosen << " servers. Simulated check: mean "
            << tacc::util::format_double(sim.mean_delay_ms(), 2)
            << " ms, p99 " << tacc::util::format_double(sim.p99_delay_ms(), 2)
            << " ms, miss rate "
            << tacc::util::format_double(sim.deadline_miss_rate(), 4)
            << " -> target "
            << (sim.mean_delay_ms() <= target_ms * 1.1 ? "confirmed"
                                                       : "NOT confirmed")
            << "\n";
  return 0;
}
