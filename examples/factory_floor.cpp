// Factory-floor scenario: stringent real-time deadlines (5–15 ms) under
// tight capacity (ρ = 0.85). Shows how the static assignment choice turns
// into deadline-miss rates once queueing is simulated — the regime the
// paper's abstract motivates ("real-time edge computing applications
// working under stringent deadlines").
//
//   ./factory_floor [--iot=400] [--edge=10] [--seed=3]
#include <iostream>

#include "core/tacc.hpp"
#include "metrics/histogram.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 400));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  const tacc::Scenario scenario = tacc::Scenario::factory(iot, edge, seed);
  std::cout << "Factory floor: " << iot << " sensors / " << edge
            << " edge servers, load factor "
            << tacc::util::format_double(scenario.workload().load_factor(), 2)
            << ", deadlines 5-15 ms\n\n";

  const tacc::ClusterConfigurator configurator(scenario);
  tacc::util::ConsoleTable table({"algorithm", "feasible", "sim mean (ms)",
                                  "sim p99 (ms)", "deadline miss rate"});
  tacc::sim::SimResult best_sim;
  std::string best_name;
  double best_miss = 2.0;
  for (const tacc::Algorithm algorithm :
       {tacc::Algorithm::kGreedyNearest, tacc::Algorithm::kRegretGreedy,
        tacc::Algorithm::kUcbRollout, tacc::Algorithm::kQLearning}) {
    tacc::AlgorithmOptions options;
    options.apply_seed(seed);
    const auto conf = configurator.configure({algorithm, options});
    tacc::sim::SimResult sim = tacc::sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(),
        {/*duration_s=*/20.0, /*warmup_s=*/2.0, seed});
    table.add_row({std::string(conf.algorithm_name()),
                   conf.feasible() ? "yes" : "NO",
                   tacc::util::format_double(sim.mean_delay_ms(), 2),
                   tacc::util::format_double(sim.p99_delay_ms(), 2),
                   tacc::util::format_double(sim.deadline_miss_rate(), 4)});
    if (sim.deadline_miss_rate() < best_miss) {
      best_miss = sim.deadline_miss_rate();
      best_sim = std::move(sim);
      best_name = std::string(conf.algorithm_name());
    }
  }
  std::cout << table.to_string("Simulated deadline performance:") << "\n";

  std::cout << "Delay distribution under " << best_name
            << " (best miss rate):\n";
  tacc::metrics::Histogram histogram(0.0, 15.0, 15);
  for (const double d : best_sim.delay_ms.values()) histogram.add(d);
  std::cout << histogram.render(40);
  return 0;
}
