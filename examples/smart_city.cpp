// Smart-city scenario walk-through: the full algorithm ladder on one
// metropolitan deployment, with lower bounds for context.
//
//   ./smart_city [--iot=500] [--edge=20] [--seed=11]
#include <iostream>

#include "core/tacc.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 500));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  const tacc::Scenario scenario = tacc::Scenario::smart_city(iot, edge, seed);
  const auto bounds = tacc::solvers::compute_lower_bounds(scenario.instance());
  std::cout << "Smart city: " << iot << " devices / " << edge
            << " edge servers. Lower bounds on total cost: min-cost "
            << tacc::util::format_double(bounds.min_cost, 0)
            << ", splittable-flow "
            << tacc::util::format_double(bounds.splittable_flow, 0) << "\n\n";

  const tacc::ClusterConfigurator configurator(scenario);
  tacc::util::ConsoleTable table({"algorithm", "total cost", "gap vs LB",
                                  "avg delay (ms)", "max util", "feasible",
                                  "solve (ms)"});
  for (const tacc::Algorithm algorithm : tacc::comparison_algorithms()) {
    tacc::AlgorithmOptions options;
    options.apply_seed(seed);
    const auto conf = configurator.configure({algorithm, options});
    const double gap_pct =
        (conf.total_cost() / bounds.splittable_flow - 1.0) * 100.0;
    table.add_row({std::string(conf.algorithm_name()),
                   tacc::util::format_double(conf.total_cost(), 0),
                   tacc::util::format_double(gap_pct, 1) + "%",
                   tacc::util::format_double(conf.avg_delay_ms(), 2),
                   tacc::util::format_double(conf.max_utilization(), 2),
                   conf.feasible() ? "yes" : "NO",
                   tacc::util::format_double(conf.solve_wall_ms(), 1)});
  }
  std::cout << table.to_string(
      "All algorithms on the same instance (gap measured against the "
      "splittable lower bound):");

  // Show where the traffic actually lands: per-server utilization of the
  // RL configuration.
  tacc::AlgorithmOptions options;
  options.apply_seed(seed);
  const auto conf =
      configurator.configure({tacc::Algorithm::kQLearning, options});
  std::cout << "\nPer-server utilization under q-learning:\n";
  const auto& ev = conf.evaluation();
  for (std::size_t j = 0; j < ev.loads.size(); ++j) {
    const double util =
        ev.loads[j] / scenario.instance().capacity(j);
    std::cout << "  server " << j << ": "
              << tacc::util::format_double(util * 100.0, 1) << "%\n";
  }
  return 0;
}
