// Dynamic reconfiguration: devices join and leave a running campus cluster.
// Joins are placed incrementally (cheapest feasible server); a bounded
// rebalance pass periodically drains the accumulated suboptimality. The
// printout tracks average delay and peak utilization through the churn.
//
//   ./dynamic_reconfig [--iot=200] [--edge=8] [--seed=5] [--events=300]
#include <iostream>

#include "core/tacc.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 200));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto events = static_cast<std::size_t>(flags.get_int("events", 300));

  const tacc::Scenario scenario = tacc::Scenario::campus(iot, edge, seed);
  tacc::AlgorithmOptions options;
  options.apply_seed(seed);
  tacc::DynamicCluster cluster(scenario, tacc::Algorithm::kQLearning,
                               options);
  std::cout << "Campus cluster started with " << cluster.active_count()
            << " devices, avg delay "
            << tacc::util::format_double(cluster.avg_delay_ms(), 2)
            << " ms\n\n";

  tacc::util::Rng rng(seed * 31 + 1);
  std::vector<std::size_t> joinable;
  tacc::util::ConsoleTable table({"event#", "active", "avg delay (ms)",
                                  "max util", "feasible", "moves"});
  const double area = scenario.params().workload.area_km;

  for (std::size_t e = 1; e <= events; ++e) {
    std::size_t moves = 0;
    if (joinable.empty() || rng.bernoulli(0.55)) {
      tacc::workload::IotDevice device;
      device.position = {rng.uniform(0.0, area), rng.uniform(0.0, area)};
      device.request_rate_hz = rng.uniform(5.0, 20.0);
      device.demand = device.request_rate_hz;
      device.deadline_ms = rng.uniform(10.0, 40.0);
      joinable.push_back(cluster.join(device).device_index);
    } else {
      const std::size_t pick = rng.index(joinable.size());
      cluster.leave(joinable[pick]);
      joinable[pick] = joinable.back();
      joinable.pop_back();
    }
    if (e % 50 == 0) {
      moves = cluster.rebalance(/*max_moves=*/64);
      table.add_row({std::to_string(e),
                     std::to_string(cluster.active_count()),
                     tacc::util::format_double(cluster.avg_delay_ms(), 2),
                     tacc::util::format_double(cluster.max_utilization(), 2),
                     cluster.feasible() ? "yes" : "NO",
                     std::to_string(moves)});
    }
  }
  std::cout << table.to_string(
      "Churn trajectory (rebalance every 50 events):");
  std::cout << "\nFinal: " << cluster.active_count() << " active devices, "
            << "avg delay "
            << tacc::util::format_double(cluster.avg_delay_ms(), 2)
            << " ms, feasible=" << (cluster.feasible() ? "yes" : "NO")
            << "\n";
  return 0;
}
