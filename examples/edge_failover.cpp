// Edge-server failover: a running cluster loses servers one after another;
// DynamicCluster evacuates their devices to the cheapest feasible healthy
// servers and the cluster keeps serving (at higher delay/utilization) until
// servers recover. Also demonstrates policy reuse: the Q-policy trained on
// the healthy cluster configures the post-recovery cluster instantly.
//
//   ./edge_failover [--iot=250] [--edge=8] [--seed=13]
#include <iostream>

#include "core/tacc.hpp"
#include "rl/policy.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 250));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));

  const tacc::Scenario scenario = tacc::Scenario::smart_city(iot, edge, seed);
  tacc::AlgorithmOptions options;
  options.apply_seed(seed);
  tacc::DynamicCluster cluster(scenario, tacc::Algorithm::kQLearning,
                               options);

  std::cout << "Cluster up: " << cluster.active_count() << " devices on "
            << cluster.server_count() << " servers, avg delay "
            << tacc::util::format_double(cluster.avg_delay_ms(), 2)
            << " ms\n\n";

  tacc::util::ConsoleTable table({"event", "healthy servers",
                                  "avg delay (ms)", "max util", "evacuated",
                                  "feasible"});
  const auto snapshot = [&](const std::string& event, std::size_t evacuated) {
    table.add_row({event, std::to_string(cluster.healthy_server_count()),
                   tacc::util::format_double(cluster.avg_delay_ms(), 2),
                   tacc::util::format_double(cluster.max_utilization(), 2),
                   std::to_string(evacuated),
                   cluster.feasible() ? "yes" : "NO"});
  };
  snapshot("initial", 0);

  // Cascading failure: lose three servers, busiest first.
  std::vector<std::size_t> downed;
  for (int wave = 0; wave < 3; ++wave) {
    std::size_t busiest = 0;
    double peak = -1.0;
    for (std::size_t j = 0; j < cluster.server_count(); ++j) {
      if (cluster.server_failed(j)) continue;
      if (cluster.loads()[j] > peak) {
        peak = cluster.loads()[j];
        busiest = j;
      }
    }
    const tacc::EvacuationReport report = cluster.fail_server(busiest);
    downed.push_back(busiest);
    snapshot("fail server " + std::to_string(busiest) +
                 (report.clean() ? ""
                                 : " (" + std::to_string(report.overloaded) +
                                       " overloaded)"),
             report.evacuated);
  }

  // Staged recovery: repair() first restores capacity feasibility (it
  // accepts cost increases), then rebalance() drains the remaining
  // suboptimality with cost-improving moves.
  for (const std::size_t server : downed) {
    cluster.recover_server(server);
    const std::size_t moves =
        cluster.repair(256) + cluster.rebalance(256);
    snapshot("recover server " + std::to_string(server) + " (+" +
                 std::to_string(moves) + " moves)",
             0);
  }
  std::cout << table.to_string("Failover timeline:") << "\n";

  // Bonus: the policy trained on this cluster re-configures a fresh
  // deployment of the same character in approximately no time.
  const tacc::rl::TrainedPolicy policy = tacc::rl::train_policy(
      scenario.instance(), options.rl, tacc::rl::TdVariant::kQLearning);
  const tacc::Scenario tomorrow =
      tacc::Scenario::smart_city(iot, edge, seed + 1);
  const auto transferred =
      tacc::rl::apply_policy(tomorrow.instance(), policy, {.seed = seed});
  std::cout << "Policy transfer to a fresh scenario: "
            << (transferred.feasible ? "feasible" : "INFEASIBLE")
            << ", avg delay "
            << tacc::util::format_double(
                   tacc::gap::evaluate(tomorrow.instance(),
                                       transferred.assignment)
                       .avg_delay_ms,
                   2)
            << " ms in "
            << tacc::util::format_double(transferred.wall_ms, 1) << " ms\n";
  return 0;
}
