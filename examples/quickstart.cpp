// Quickstart: generate a scenario, configure the cluster with the RL
// heuristic, compare against the classical nearest-edge policy, and validate
// both under packet-level simulation.
//
//   ./quickstart [--iot=300] [--edge=12] [--seed=7]
#include <iostream>

#include "core/tacc.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const auto flags = tacc::util::Flags::parse(argc, argv);
  const auto iot = static_cast<std::size_t>(flags.get_int("iot", 300));
  const auto edge = static_cast<std::size_t>(flags.get_int("edge", 12));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  std::cout << "Generating a smart-city scenario: " << iot
            << " IoT devices, " << edge << " edge servers (seed " << seed
            << ")\n";
  const tacc::Scenario scenario = tacc::Scenario::smart_city(iot, edge, seed);
  std::cout << "Network: " << scenario.network().graph.node_count()
            << " nodes, " << scenario.network().graph.edge_count()
            << " links; load factor "
            << tacc::util::format_double(scenario.workload().load_factor(), 2)
            << "\n\n";

  const tacc::ClusterConfigurator configurator(scenario);
  tacc::util::ConsoleTable table(
      {"algorithm", "avg delay (ms)", "max delay (ms)", "max util",
       "feasible", "solve (ms)", "sim p99 (ms)", "miss rate"});

  for (const tacc::Algorithm algorithm :
       {tacc::Algorithm::kGreedyNearest, tacc::Algorithm::kGreedyBestFit,
        tacc::Algorithm::kQLearning}) {
    tacc::AlgorithmOptions options;
    options.apply_seed(seed);
    const tacc::ClusterConfiguration conf =
        configurator.configure({algorithm, options});
    const tacc::sim::SimResult sim = tacc::sim::simulate(
        scenario.network(), scenario.workload(), conf.assignment(),
        {/*duration_s=*/20.0, /*warmup_s=*/2.0, seed});
    table.add_row({std::string(conf.algorithm_name()),
                   tacc::util::format_double(conf.avg_delay_ms(), 2),
                   tacc::util::format_double(conf.max_delay_ms(), 2),
                   tacc::util::format_double(conf.max_utilization(), 2),
                   conf.feasible() ? "yes" : "NO",
                   tacc::util::format_double(conf.solve_wall_ms(), 1),
                   tacc::util::format_double(sim.p99_delay_ms(), 2),
                   tacc::util::format_double(sim.deadline_miss_rate(), 3)});
  }
  std::cout << table.to_string("Static objective vs simulated reality:")
            << "\nThe RL configuration should match or beat the greedy "
               "baselines on delay\nwhile never overloading a server "
               "(feasible = yes).\n";
  return 0;
}
