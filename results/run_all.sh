#!/bin/bash
# Regenerates every experiment (tables T1-T2, figures F1-F8, ablations A1-A3).
# Runs from the repo root; benches write their CSVs into results/ by default
# (override with --out=DIR, which is forwarded along with any other flags).
cd "$(dirname "$0")/.."
for b in bench_t1_optimality_gap bench_t2_headline bench_f1_delay_vs_iot \
         bench_f2_delay_vs_edge bench_f3_load_factor bench_f4_convergence \
         bench_f5_delay_cdf bench_f6_deadline_miss bench_f7_topologies \
         bench_f8_runtime bench_a1_topology_ablation bench_a2_rl_ablation bench_a4_transfer \
         bench_a5_resilience bench_a6_mobility bench_a7_analytic \
         bench_m1_portfolio bench_m2_churn bench_m3_serve \
         bench_m4_linkchurn; do
  echo "##### $b #####"
  ./build/bench/$b "$@" || exit 1
done
echo "##### bench_a3_micro #####"
./build/bench/bench_a3_micro --benchmark_min_time=0.2 || exit 1
