#!/bin/bash
# Regenerates every experiment (tables T1-T2, figures F1-F8, ablations,
# machinery gates M1-M6). Runs from the repo root; benches write their CSVs
# and BENCH_*.json perf artifacts into results/ by default (override with
# --out=DIR, which is forwarded along with any other flags). After the
# sweep, every BENCH_*.json in the output directory is schema-validated by
# tools/check_bench_json.py, so a bench that emits a malformed artifact
# fails the run even if its own gates passed.
set -o pipefail
cd "$(dirname "$0")/.."

# Mirror the benches' --out handling so validation looks where they wrote.
OUT_DIR=results
for arg in "$@"; do
  case "$arg" in
    --out=*) OUT_DIR=${arg#--out=} ;;
  esac
done

for b in bench_t1_optimality_gap bench_t2_headline bench_f1_delay_vs_iot \
         bench_f2_delay_vs_edge bench_f3_load_factor bench_f4_convergence \
         bench_f5_delay_cdf bench_f6_deadline_miss bench_f7_topologies \
         bench_f8_runtime bench_a1_topology_ablation bench_a2_rl_ablation bench_a4_transfer \
         bench_a5_resilience bench_a6_mobility bench_a7_analytic \
         bench_m1_portfolio bench_m2_churn bench_m3_serve \
         bench_m4_linkchurn bench_m5_reopt bench_m6_oracle; do
  echo "##### $b #####"
  ./build/bench/$b "$@" || exit 1
done
echo "##### bench_a3_micro #####"
./build/bench/bench_a3_micro --benchmark_min_time=0.2 || exit 1

echo "##### validate BENCH_*.json #####"
python3 tools/check_bench_json.py "$OUT_DIR" || exit 1
